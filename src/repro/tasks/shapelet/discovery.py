"""Shapelet discovery: candidate enumeration, scoring, and top-k selection.

Classic shapelet discovery enumerates every subsequence of the training set —
impossible when the training series are private.  Following the paper's
stated future work, the candidate pool here is the set of *privately
extracted frequent shapes*: every symbol window of their numeric
reconstruction is one candidate, scored by information gain of its distance
profile on a small public labelled reference set, and the top-k survivors
(after overlap pruning) become the shapelet set.

All of the per-candidate distance work runs through the vectorized
:func:`repro.tasks.shapelet.transform.min_distance_matrix` kernel; the
information-gain scan itself is one cumulative-count matrix computation per
candidate instead of a Python loop over split points.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.sax.reconstruction import symbols_to_values
from repro.tasks.shapelet.transform import SIGMA_MIN, min_distance_matrix


@dataclass(frozen=True)
class ShapeletCandidate:
    """One candidate window of an extracted shape, with provenance and score.

    ``start`` / ``symbols`` locate the window inside ``source_shape`` (in
    symbols, pre-reconstruction), which is what overlap pruning reasons
    about; ``values`` is the numeric reconstruction the distance kernels
    consume.  ``label`` carries class provenance when the candidate came from
    a per-class extraction, ``None`` for unlabelled extractions.
    """

    values: tuple[float, ...]
    symbols: str
    source_shape: str
    source_index: int
    start: int
    label: int | None = None
    gain: float = 0.0
    threshold: float = 0.0

    @property
    def length(self) -> int:
        """Number of numeric points (symbols × points_per_symbol)."""
        return len(self.values)

    @property
    def symbol_length(self) -> int:
        """Window length in symbols."""
        return len(self.symbols)

    def describe(self) -> dict:
        """Plain-data form for RunResult details / JSON artifacts."""
        payload = {
            "symbols": self.symbols,
            "source_shape": self.source_shape,
            "start": self.start,
            "length": self.symbol_length,
            "gain": float(self.gain),
            "threshold": float(self.threshold),
        }
        if self.label is not None:
            payload["label"] = int(self.label)
        return payload


def enumerate_windows(
    shapes: Sequence,
    alphabet_size: int,
    *,
    min_length: int = 2,
    max_length: int | None = None,
    points_per_symbol: int = 8,
    labels: Sequence[int] | None = None,
) -> list[ShapeletCandidate]:
    """Every symbol window of every extracted shape as one candidate.

    ``shapes`` are symbol sequences (strings or tuples); each window of
    ``min_length .. max_length`` symbols is reconstructed onto
    ``points_per_symbol`` numeric points per symbol.  ``labels`` optionally
    attaches class provenance per shape; duplicates (same label and numeric
    values) are dropped, keeping the first occurrence.
    """
    candidates: list[ShapeletCandidate] = []
    seen: set[tuple[int | None, tuple[float, ...]]] = set()
    for index, shape in enumerate(shapes):
        symbols = tuple(shape)
        label = None if labels is None else int(labels[index])
        upper = min(max_length or len(symbols), len(symbols))
        for window_length in range(min_length, upper + 1):
            for start in range(len(symbols) - window_length + 1):
                window = symbols[start : start + window_length]
                values = tuple(
                    symbols_to_values(
                        window, alphabet_size, repeat=points_per_symbol
                    )
                )
                key = (label, values)
                if key in seen:
                    continue
                seen.add(key)
                candidates.append(
                    ShapeletCandidate(
                        values=values,
                        symbols="".join(window),
                        source_shape="".join(symbols),
                        source_index=index,
                        start=start,
                        label=label,
                    )
                )
    return candidates


def information_gain(distances, labels) -> tuple[float, float]:
    """Best information gain over all distance thresholds, and that threshold.

    ``distances[i]`` is a candidate's distance to series ``i`` of class
    ``labels[i]``.  Every split point is evaluated at once from cumulative
    class counts; splits between (near-)equal neighbouring distances are
    skipped, and ties keep the earliest split — the same contract as the
    scalar prototype this replaced.  Returns ``(0.0, min(distances))`` when
    no split improves on the unsplit entropy.
    """
    distances = np.asarray(distances, dtype=float)
    labels = np.asarray(labels)
    if distances.size != labels.size or distances.size == 0:
        raise ValueError("distances and labels must be non-empty and equally long")
    order = np.argsort(distances, kind="stable")
    sorted_distances = distances[order]
    if distances.size == 1:
        return 0.0, float(sorted_distances[0])
    _, class_codes = np.unique(labels[order], return_inverse=True)
    n = distances.size
    n_classes = int(class_codes.max()) + 1
    one_hot = np.zeros((n, n_classes), dtype=float)
    one_hot[np.arange(n), class_codes] = 1.0
    # left[s] = class counts strictly below split s+1 (splits run 1..n-1).
    left = np.cumsum(one_hot, axis=0)[:-1]
    totals = one_hot.sum(axis=0)
    right = totals[None, :] - left
    n_left = np.arange(1, n, dtype=float)
    n_right = n - n_left

    def _entropy(counts: np.ndarray, sizes: np.ndarray) -> np.ndarray:
        proportions = counts / sizes[:, None]
        logs = np.zeros_like(proportions)
        np.log2(proportions, out=logs, where=proportions > 0.0)
        return -(proportions * logs).sum(axis=1)

    total_entropy = float(
        _entropy(totals[None, :], np.asarray([float(n)]))[0]
    )
    gains = total_entropy - (
        n_left * _entropy(left, n_left) + n_right * _entropy(right, n_right)
    ) / n
    # A threshold between two equal distances cannot separate them.
    separable = ~np.isclose(sorted_distances[1:], sorted_distances[:-1])
    gains = np.where(separable, gains, -np.inf)
    best = int(np.argmax(gains))
    if not np.isfinite(gains[best]) or gains[best] <= 0.0:
        return 0.0, float(sorted_distances[0])
    threshold = float(
        (sorted_distances[best + 1] + sorted_distances[best]) / 2.0
    )
    return float(gains[best]), threshold


def score_candidates(
    candidates: Sequence[ShapeletCandidate],
    series_list: Sequence,
    labels,
    *,
    normalize: bool = False,
    sigma_min: float = SIGMA_MIN,
) -> list[ShapeletCandidate]:
    """Score every candidate's information gain on a labelled reference set.

    One :func:`min_distance_matrix` call produces the full
    series × candidate distance matrix; each column is then scanned for its
    optimal-threshold information gain.  Returns new candidates with
    ``gain`` / ``threshold`` filled in, in the input order.
    """
    if not candidates:
        return []
    matrix = min_distance_matrix(
        series_list,
        [np.asarray(candidate.values) for candidate in candidates],
        normalize=normalize,
        sigma_min=sigma_min,
    )
    labels = np.asarray(labels)
    scored = []
    for column, candidate in enumerate(candidates):
        gain, threshold = information_gain(matrix[:, column], labels)
        scored.append(replace(candidate, gain=gain, threshold=threshold))
    return scored


def _overlap_fraction(a: ShapeletCandidate, b: ShapeletCandidate) -> float:
    """Symbol-window overlap of two candidates from the same source shape."""
    if (a.source_index, a.source_shape) != (b.source_index, b.source_shape):
        return 0.0
    lo = max(a.start, b.start)
    hi = min(a.start + a.symbol_length, b.start + b.symbol_length)
    if hi <= lo:
        return 0.0
    return (hi - lo) / min(a.symbol_length, b.symbol_length)


def select_shapelets(
    scored: Sequence[ShapeletCandidate],
    n_shapelets: int,
    *,
    max_overlap: float = 0.5,
) -> list[ShapeletCandidate]:
    """Top-k candidates by gain, pruning near-duplicate windows.

    Candidates are ranked by (gain desc, length asc, enumeration order) and
    taken greedily; a candidate whose symbol window overlaps an already
    selected candidate from the same source shape by more than
    ``max_overlap`` (fraction of the shorter window) is skipped.  If pruning
    leaves fewer than ``n_shapelets`` survivors, the best pruned candidates
    backfill the remaining slots — a caller asking for k shapelets gets
    min(k, len(scored)) of them, deterministic for a given input order.
    """
    ranked = sorted(
        range(len(scored)),
        key=lambda i: (-scored[i].gain, scored[i].length, i),
    )
    selected: list[ShapeletCandidate] = []
    pruned: list[ShapeletCandidate] = []
    for index in ranked:
        candidate = scored[index]
        if len(selected) >= n_shapelets:
            break
        if any(
            _overlap_fraction(candidate, kept) > max_overlap
            for kept in selected
        ):
            pruned.append(candidate)
            continue
        selected.append(candidate)
    for candidate in pruned:
        if len(selected) >= n_shapelets:
            break
        selected.append(candidate)
    return selected[:n_shapelets]


def discover_shapelets(
    shapes: Sequence,
    series_list: Sequence,
    labels,
    alphabet_size: int,
    *,
    n_shapelets: int = 5,
    min_length: int = 2,
    max_length: int | None = None,
    points_per_symbol: int = 8,
    max_overlap: float = 0.5,
    normalize: bool = False,
    sigma_min: float = SIGMA_MIN,
    shape_labels: Sequence[int] | None = None,
) -> list[ShapeletCandidate]:
    """Enumerate → score → select, in one call.

    ``shapes`` are the extracted frequent shapes (symbol strings);
    ``series_list`` / ``labels`` are the public labelled reference set the
    candidates are scored on.  Returns at most ``n_shapelets`` candidates,
    best gain first.
    """
    candidates = enumerate_windows(
        shapes,
        alphabet_size,
        min_length=min_length,
        max_length=max_length,
        points_per_symbol=points_per_symbol,
        labels=shape_labels,
    )
    scored = score_candidates(
        candidates, series_list, labels, normalize=normalize, sigma_min=sigma_min
    )
    return select_shapelets(scored, n_shapelets, max_overlap=max_overlap)
