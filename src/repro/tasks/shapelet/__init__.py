"""Shapelet workload: vectorized transform kernels, discovery, and the task.

Public surface of ``task="shapelet"``:

* :mod:`~repro.tasks.shapelet.transform` — the vectorized distance kernels
  (:func:`subsequences`, :func:`z_normalize`, :func:`sliding_min_distance`,
  :func:`min_distance_matrix`) and the :class:`ShapeletTransform` feature
  stage;
* :mod:`~repro.tasks.shapelet.discovery` — candidate enumeration from
  extracted frequent shapes, information-gain scoring, and top-k selection
  with overlap pruning;
* :mod:`~repro.tasks.shapelet.runner` — the registered task entry point
  gluing private extraction (any backend) to the deterministic
  discover → transform → classify stage.
"""

from repro.tasks.shapelet.discovery import (
    ShapeletCandidate,
    discover_shapelets,
    enumerate_windows,
    information_gain,
    score_candidates,
    select_shapelets,
)
from repro.tasks.shapelet.runner import (
    SHAPELET_DEFAULTS,
    ShapeletStageResult,
    run_shapelet_stage,
    run_shapelet_task,
    shapelet_knobs,
)
from repro.tasks.shapelet.transform import (
    SIGMA_MIN,
    ShapeletTransform,
    min_distance_matrix,
    sliding_min_distance,
    subsequences,
    z_normalize,
)

__all__ = [
    "SIGMA_MIN",
    "SHAPELET_DEFAULTS",
    "ShapeletCandidate",
    "ShapeletStageResult",
    "ShapeletTransform",
    "discover_shapelets",
    "enumerate_windows",
    "information_gain",
    "min_distance_matrix",
    "run_shapelet_stage",
    "run_shapelet_task",
    "score_candidates",
    "select_shapelets",
    "shapelet_knobs",
    "sliding_min_distance",
    "subsequences",
    "z_normalize",
]
