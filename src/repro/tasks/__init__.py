"""Registered downstream workloads over privately extracted shapes.

Where :mod:`repro.core` implements the collection protocol and
:mod:`repro.api` the execution surface, this package holds the *task layer*:
self-contained workloads that consume an extraction result and turn it into
task-level quality numbers.  Each workload registers itself in the task
registry (:mod:`repro.api.tasks`) so ``ExperimentSpec.run(data, task=...)``
and ``repro run --task ...`` reach it by name on any execution backend.

Current workloads:

* :mod:`repro.tasks.shapelet` — shapelet discovery/transform/classification
  over the extracted frequent shapes (``task="shapelet"``).
"""
