"""Theorem 4 (utility analysis) — perturbation-domain sizes per trie level.

The paper's utility argument is that PrivShape's sub-shape pruning keeps the
Exponential-Mechanism domain at every level within c²k² candidates, whereas
the baseline's domain can grow like t·(t-1)^(ℓ-1).  This bench measures the
actual per-level domain sizes of both mechanisms on the Symbols task and
reports the ratio, which is the factor appearing in Theorem 4.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import print_table, symbols_dataset
from repro.core.baseline import BaselineMechanism
from repro.core.config import BaselineConfig, PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.sax.compressive import CompressiveSAX


def test_theorem4_perturbation_domain_sizes(benchmark):
    dataset = symbols_dataset()
    transformer = CompressiveSAX(alphabet_size=6, segment_length=25)
    sequences = transformer.transform_dataset(dataset.series)

    results = {}

    def run_both():
        privshape_config = PrivShapeConfig(
            epsilon=4.0, top_k=6, alphabet_size=6, metric="dtw", length_high=15
        )
        baseline_config = BaselineConfig(
            epsilon=4.0, top_k=6, alphabet_size=6, metric="dtw", length_high=15
        )
        results["privshape"] = PrivShape(privshape_config).extract(sequences, rng=191)
        results["baseline"] = BaselineMechanism(baseline_config).extract(sequences, rng=191)
        results["config"] = privshape_config
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    privshape_sizes = results["privshape"].trie.domain_sizes()
    baseline_sizes = results["baseline"].trie.domain_sizes()
    levels = sorted(set(privshape_sizes) | set(baseline_sizes))
    rows = []
    for level in levels:
        p = privshape_sizes.get(level, 0)
        b = baseline_sizes.get(level, 0)
        ratio = b / p if p else float("inf")
        rows.append([level, b, p, ratio])
    print_table(
        "Theorem 4: per-level EM perturbation-domain sizes (Symbols, eps=4)",
        ["trie level", "baseline domain", "privshape domain", "baseline/privshape"],
        rows,
    )

    config = results["config"]
    bound = config.candidate_budget * (config.alphabet_size - 1)
    # PrivShape's domain respects the c*k*(t-1) expansion bound at every level.
    assert all(size <= bound for size in privshape_sizes.values())
    # Averaged over shared levels the baseline's domain is at least as large.
    shared = [lvl for lvl in levels if lvl in privshape_sizes and lvl in baseline_sizes and lvl >= 2]
    if shared:
        assert np.mean([baseline_sizes[lvl] for lvl in shared]) >= np.mean(
            [privshape_sizes[lvl] for lvl in shared]
        )
