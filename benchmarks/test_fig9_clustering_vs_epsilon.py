"""Fig. 9 — clustering ARI on Symbols as the privacy budget ε varies.

Paper setting: ε ∈ {0.1, 0.5, 1, 2, ..., 10}, Symbols dataset, t = 6, w = 25.
Paper outcome: PrivShape's ARI rises quickly with ε and saturates around
0.6–0.7; the Baseline stays clearly below PrivShape; PatternLDP + KMeans stays
near ARI ≈ 0 across the whole range.

The reproduction sweeps a trimmed ε grid (the paper's endpoints and midpoints)
to keep the wall-clock reasonable; set PRIVSHAPE_BENCH_TRIALS > 1 to average.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    mean_of,
    print_table,
    symbols_dataset,
)
from repro.core.pipeline import run_clustering_task

EPSILONS = (0.1, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0)
MECHANISMS = ("privshape", "baseline", "patternldp")


def _run(mechanism: str, epsilon: float, seed: int):
    return run_clustering_task(
        symbols_dataset(),
        mechanism=mechanism,
        epsilon=epsilon,
        alphabet_size=6,
        segment_length=25,
        evaluation_size=bench_eval_size(),
        rng=seed,
    )


def test_fig9_clustering_ari_vs_epsilon(benchmark):
    ari = {}

    def run_all():
        for mechanism in MECHANISMS:
            for epsilon in EPSILONS:
                results = average_runs(
                    lambda seed, m=mechanism, e=epsilon: _run(m, e, seed),
                    bench_trials(),
                    seed=91,
                )
                ari[(mechanism, epsilon)] = mean_of(results, "ari")
        return ari

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [epsilon] + [ari[(mechanism, epsilon)] for mechanism in MECHANISMS]
        for epsilon in EPSILONS
    ]
    print_table(
        "Fig. 9: clustering ARI vs privacy budget (Symbols)",
        ["epsilon", "privshape", "baseline", "patternldp+kmeans"],
        rows,
    )

    privshape_curve = [ari[("privshape", e)] for e in EPSILONS]
    patternldp_curve = [ari[("patternldp", e)] for e in EPSILONS]
    # PrivShape improves with the budget and clearly beats PatternLDP at eps >= 2.
    assert privshape_curve[-1] > privshape_curve[0]
    assert np.mean(privshape_curve[3:]) > np.mean(patternldp_curve[3:]) + 0.2
    # PatternLDP stays near random clustering across the sweep.
    assert max(abs(v) for v in patternldp_curve) < 0.25
