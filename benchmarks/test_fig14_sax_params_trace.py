"""Fig. 14 — effect of the SAX parameters on the Trace classification task.

Paper setting: ε = 4; (a) w = 10 with symbol size t ∈ {3, 4, 5, 6};
(b) t = 4 with segment length w ∈ {5, 10, 15, 20}.
Paper outcome: accuracy first rises then falls with both t and w (inverted U),
with the paper's chosen setting (t = 4, w = 10) near the peak.
"""

from __future__ import annotations

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    mean_of,
    print_table,
    trace_dataset,
)
from repro.core.pipeline import run_classification_task

SYMBOL_SIZES = (3, 4, 5, 6)
SEGMENT_LENGTHS = (5, 10, 15, 20)


def _run(alphabet_size: int, segment_length: int, seed: int):
    return run_classification_task(
        trace_dataset(),
        mechanism="privshape",
        epsilon=4.0,
        alphabet_size=alphabet_size,
        segment_length=segment_length,
        metric="sed",
        evaluation_size=bench_eval_size(),
        rng=seed,
    )


def test_fig14a_varying_symbol_size(benchmark):
    accuracy = {}

    def run_all():
        for t in SYMBOL_SIZES:
            results = average_runs(
                lambda seed, t=t: _run(t, 10, seed), bench_trials(), seed=141
            )
            accuracy[t] = mean_of(results, "accuracy")
        return accuracy

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Fig. 14(a): accuracy varying symbol size t (Trace, w=10, eps=4)",
        ["t", "accuracy"],
        [[t, accuracy[t]] for t in SYMBOL_SIZES],
    )
    assert max(accuracy.values()) > 0.6


def test_fig14b_varying_segment_length(benchmark):
    accuracy = {}

    def run_all():
        for w in SEGMENT_LENGTHS:
            results = average_runs(
                lambda seed, w=w: _run(4, w, seed), bench_trials(), seed=142
            )
            accuracy[w] = mean_of(results, "accuracy")
        return accuracy

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Fig. 14(b): accuracy varying segment length w (Trace, t=4, eps=4)",
        ["w", "accuracy"],
        [[w, accuracy[w]] for w in SEGMENT_LENGTHS],
    )
    assert max(accuracy.values()) > 0.6
    # Extreme settings lose utility relative to the best setting.
    assert max(accuracy.values()) - min(accuracy.values()) > 0.03
