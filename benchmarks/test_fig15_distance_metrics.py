"""Fig. 15 — impact of the distance metric used inside PrivShape.

Paper setting: PrivShape run with DTW, SED, and Euclidean as the score /
matching metric, compared against PatternLDP, for ε ∈ {1, 2, 3, 4};
(a) clustering ARI on Symbols, (b) classification accuracy on Trace.
Paper outcome: the metrics differ somewhat, but *every* PrivShape variant
beats PatternLDP across the practical budgets ε ≤ 4.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    mean_of,
    print_table,
    symbols_dataset,
    trace_dataset,
)
from repro.core.pipeline import run_classification_task, run_clustering_task

EPSILONS = (1.0, 2.0, 3.0, 4.0)
METRICS = ("dtw", "sed", "euclidean")


def test_fig15a_clustering_distance_metrics(benchmark):
    ari = {}

    def run_all():
        for metric in METRICS:
            for epsilon in EPSILONS:
                results = average_runs(
                    lambda seed, m=metric, e=epsilon: run_clustering_task(
                        symbols_dataset(),
                        mechanism="privshape",
                        epsilon=e,
                        alphabet_size=6,
                        segment_length=25,
                        metric=m,
                        evaluation_size=bench_eval_size(),
                        rng=seed,
                    ),
                    bench_trials(),
                    seed=151,
                )
                ari[("privshape-" + metric, epsilon)] = mean_of(results, "ari")
        for epsilon in EPSILONS:
            results = average_runs(
                lambda seed, e=epsilon: run_clustering_task(
                    symbols_dataset(),
                    mechanism="patternldp",
                    epsilon=e,
                    alphabet_size=6,
                    segment_length=25,
                    evaluation_size=bench_eval_size(),
                    rng=seed,
                ),
                bench_trials(),
                seed=151,
            )
            ari[("patternldp", epsilon)] = mean_of(results, "ari")
        return ari

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    variants = ["privshape-" + m for m in METRICS] + ["patternldp"]
    rows = [[epsilon] + [ari[(v, epsilon)] for v in variants] for epsilon in EPSILONS]
    print_table("Fig. 15(a): clustering ARI by distance metric (Symbols)", ["epsilon"] + variants, rows)

    for metric in METRICS:
        privshape_mean = np.mean([ari[("privshape-" + metric, e)] for e in EPSILONS[1:]])
        patternldp_mean = np.mean([ari[("patternldp", e)] for e in EPSILONS[1:]])
        assert privshape_mean > patternldp_mean


def test_fig15b_classification_distance_metrics(benchmark):
    accuracy = {}

    def run_all():
        for metric in METRICS:
            for epsilon in EPSILONS:
                results = average_runs(
                    lambda seed, m=metric, e=epsilon: run_classification_task(
                        trace_dataset(),
                        mechanism="privshape",
                        epsilon=e,
                        alphabet_size=4,
                        segment_length=10,
                        metric=m,
                        evaluation_size=bench_eval_size(),
                        rng=seed,
                    ),
                    bench_trials(),
                    seed=152,
                )
                accuracy[("privshape-" + metric, epsilon)] = mean_of(results, "accuracy")
        for epsilon in EPSILONS:
            results = average_runs(
                lambda seed, e=epsilon: run_classification_task(
                    trace_dataset(),
                    mechanism="patternldp",
                    epsilon=e,
                    alphabet_size=4,
                    segment_length=10,
                    evaluation_size=bench_eval_size(),
                    patternldp_train_size=600,
                    forest_size=10,
                    rng=seed,
                ),
                bench_trials(),
                seed=152,
            )
            accuracy[("patternldp", epsilon)] = mean_of(results, "accuracy")
        return accuracy

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    variants = ["privshape-" + m for m in METRICS] + ["patternldp"]
    rows = [[epsilon] + [accuracy[(v, epsilon)] for v in variants] for epsilon in EPSILONS]
    print_table(
        "Fig. 15(b): classification accuracy by distance metric (Trace)",
        ["epsilon"] + variants,
        rows,
    )

    best_privshape = max(
        np.mean([accuracy[("privshape-" + m, e)] for e in EPSILONS[1:]]) for m in METRICS
    )
    patternldp_mean = np.mean([accuracy[("patternldp", e)] for e in EPSILONS[1:]])
    assert best_privshape > patternldp_mean
