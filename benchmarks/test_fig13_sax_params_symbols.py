"""Fig. 13 — effect of the SAX parameters on the Symbols clustering task.

Paper setting: ε = 4; (a) w = 25 with symbol size t ∈ {4, 5, 6, 7};
(b) t = 6 with segment length w ∈ {15, 20, 25, 30}.
Paper outcome: ARI first rises then falls in both sweeps (an inverted U) —
too few symbols / too coarse segments lose shape information, too many
symbols / too fine segments capture noise and hurt similarity matching.
"""

from __future__ import annotations

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    mean_of,
    print_table,
    symbols_dataset,
)
from repro.core.pipeline import run_clustering_task

SYMBOL_SIZES = (4, 5, 6, 7)
SEGMENT_LENGTHS = (15, 20, 25, 30)


def _run(alphabet_size: int, segment_length: int, seed: int):
    return run_clustering_task(
        symbols_dataset(),
        mechanism="privshape",
        epsilon=4.0,
        alphabet_size=alphabet_size,
        segment_length=segment_length,
        evaluation_size=bench_eval_size(),
        rng=seed,
    )


def test_fig13a_varying_symbol_size(benchmark):
    ari = {}

    def run_all():
        for t in SYMBOL_SIZES:
            results = average_runs(
                lambda seed, t=t: _run(t, 25, seed), bench_trials(), seed=131
            )
            ari[t] = mean_of(results, "ari")
        return ari

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Fig. 13(a): ARI varying symbol size t (Symbols, w=25, eps=4)",
        ["t", "ARI"],
        [[t, ari[t]] for t in SYMBOL_SIZES],
    )
    # Utility is not monotone in t: the best setting is an interior point or at
    # least clearly better than the worst setting.
    assert max(ari.values()) - min(ari.values()) > 0.03


def test_fig13b_varying_segment_length(benchmark):
    ari = {}

    def run_all():
        for w in SEGMENT_LENGTHS:
            results = average_runs(
                lambda seed, w=w: _run(6, w, seed), bench_trials(), seed=132
            )
            ari[w] = mean_of(results, "ari")
        return ari

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Fig. 13(b): ARI varying segment length w (Symbols, t=6, eps=4)",
        ["w", "ARI"],
        [[w, ari[w]] for w in SEGMENT_LENGTHS],
    )
    assert max(ari.values()) > 0.3
