"""Extra design-choice ablations called out in DESIGN.md (beyond the paper's figures).

1. Two-level refinement on/off — how much does re-estimating leaf frequencies
   from the held-out Pd population matter?
2. Population-split ratios — the paper fixes (Pa, Pb, Pc, Pd) =
   (2%, 8%, 70%, 20%); this sweep probes nearby splits.
3. Candidate factor c — the paper uses c = 3; the trade-off is pruning safety
   (larger c keeps more candidates) versus EM domain size (smaller is sharper).
"""

from __future__ import annotations

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    mean_of,
    print_table,
    trace_dataset,
)
from repro.core.config import PrivShapeConfig
from repro.core.pipeline import run_classification_task
from repro.core.privshape import PrivShape
from repro.mining.metrics import accuracy_score
from repro.mining.nearest import NearestShapeClassifier
from repro.sax.compressive import CompressiveSAX


def test_refinement_ablation(benchmark):
    """Two-level refinement on vs off (unlabelled extraction, Trace, eps=4).

    With the refinement disabled the final leaf frequencies are the raw
    Exponential-Mechanism counts from the last expansion group (and the Pd
    population is simply unused); with it enabled the leaf counts are
    re-estimated with OUE from Pd.  The table reports the clustering quality
    (ARI of assigning every user to the closest extracted shape).
    """
    from repro.mining.metrics import adjusted_rand_index
    from repro.mining.nearest import assign_to_shapes

    dataset = trace_dataset()
    transformer = CompressiveSAX(alphabet_size=4, segment_length=10)
    evaluation = dataset.subsample(bench_eval_size(), rng=201)
    sequences = transformer.transform_dataset(dataset.series)
    evaluation_sequences = transformer.transform_dataset(evaluation.series)
    ari = {}

    def run_both():
        for refinement in (True, False):
            config = PrivShapeConfig(
                epsilon=4.0,
                top_k=dataset.n_classes,
                alphabet_size=4,
                metric="sed",
                length_high=10,
                refinement=refinement,
            )
            result = PrivShape(config).extract(sequences, rng=202)
            assignments = assign_to_shapes(
                evaluation_sequences, result.shapes, metric="sed", alphabet_size=4
            )
            ari[refinement] = adjusted_rand_index(evaluation.labels, assignments)
        return ari

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    print_table(
        "Ablation: two-level refinement (Trace, unlabelled extraction, eps=4)",
        ["refinement", "ARI"],
        [["on", ari[True]], ["off", ari[False]]],
    )
    assert ari[True] > 0.0


def test_population_split_ablation(benchmark):
    """Sensitivity to the (Pa, Pb, Pc, Pd) split."""
    splits = {
        "paper (2/8/70/20)": (0.02, 0.08, 0.7, 0.2),
        "more refinement (2/8/50/40)": (0.02, 0.08, 0.5, 0.4),
        "more expansion (2/8/85/5)": (0.02, 0.08, 0.85, 0.05),
        "more sub-shapes (2/28/50/20)": (0.02, 0.28, 0.5, 0.2),
    }
    dataset = trace_dataset()
    transformer = CompressiveSAX(alphabet_size=4, segment_length=10)
    train, test = dataset.train_test_split(test_fraction=0.3, rng=204)
    test = test.subsample(bench_eval_size(), rng=204)
    sequences = transformer.transform_dataset(train.series)
    accuracy = {}

    def run_all():
        for name, fractions in splits.items():
            config = PrivShapeConfig(
                epsilon=4.0,
                top_k=dataset.n_classes,
                alphabet_size=4,
                metric="sed",
                length_high=10,
                population_fractions=fractions,
            )
            result = PrivShape(config).extract_labeled(
                sequences, train.labels, n_classes=dataset.n_classes, rng=205
            )
            labelled = {c: s for c, s in result.shapes_by_class.items() if s}
            classifier = NearestShapeClassifier(
                labelled_shapes=labelled, transformer=transformer, metric="sed"
            )
            accuracy[name] = accuracy_score(test.labels, classifier.predict(test.series))
        return accuracy

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Ablation: population split (Trace classification, eps=4)",
        ["split", "accuracy"],
        [[name, accuracy[name]] for name in splits],
    )
    assert all(value > 0.34 for value in accuracy.values())


def test_candidate_factor_ablation(benchmark):
    """Sensitivity to the candidate factor c (top-c*k pruning)."""
    accuracy = {}

    def run_all():
        for factor in (2, 3, 5):
            results = average_runs(
                lambda seed, c=factor: run_classification_task(
                    trace_dataset(),
                    mechanism="privshape",
                    epsilon=4.0,
                    alphabet_size=4,
                    segment_length=10,
                    metric="sed",
                    candidate_factor=c,
                    evaluation_size=bench_eval_size(),
                    rng=seed,
                ),
                bench_trials(),
                seed=206,
            )
            accuracy[factor] = mean_of(results, "accuracy")
        return accuracy

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_table(
        "Ablation: candidate factor c (Trace classification, eps=4)",
        ["c", "accuracy"],
        [[c, accuracy[c]] for c in sorted(accuracy)],
    )
    assert max(accuracy.values()) > 0.5
