"""Fig. 17 — varying the time-series length while the shape changes with it.

Paper setting: 1000-point sine/cosine periods of which only the first
200 / 400 / 600 / 800 / 1000 points are kept, ε = 4, t = 4, w = 10.  Short
prefixes make sine and cosine genuinely harder to tell apart (both are a
single arc), so the problem itself changes with the length.
Paper outcome: PrivShape's accuracy stays reasonable across all prefixes and
above PatternLDP, which fluctuates heavily when the series are partially
similar.

The 600-point prefix is a genuine knife edge: the compressed-length
distribution is almost exactly bimodal (lengths 4 and 7), so single runs
fluctuate no matter the mechanism internals.  The paper averages 500 trials;
this reproduction averages at least three per configuration so the asserted
trends reflect the mechanism rather than one seed's coin flip.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    bench_users,
    mean_of,
    print_table,
)
from repro.core.pipeline import run_classification_task
from repro.datasets import trigonometric_waves_prefix

PREFIX_LENGTHS = (200, 400, 600, 800, 1000)


def _dataset(prefix_length: int):
    n = min(bench_users(), 12000)
    return trigonometric_waves_prefix(
        n_instances=n, prefix_length=prefix_length, full_length=1000, rng=170 + prefix_length
    )


def test_fig17_varying_length_different_shape(benchmark):
    accuracy = {}

    def run_all():
        for prefix_length in PREFIX_LENGTHS:
            dataset = _dataset(prefix_length)
            for mechanism in ("privshape", "patternldp"):
                results = average_runs(
                    lambda seed, d=dataset, m=mechanism: run_classification_task(
                        d,
                        mechanism=m,
                        epsilon=4.0,
                        alphabet_size=4,
                        segment_length=10,
                        metric="sed",
                        evaluation_size=bench_eval_size(),
                        patternldp_train_size=400,
                        forest_size=10,
                        rng=seed,
                    ),
                    max(bench_trials(), 3),
                    seed=171,
                )
                accuracy[(mechanism, prefix_length)] = mean_of(results, "accuracy")
        return accuracy

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [length, accuracy[("privshape", length)], accuracy[("patternldp", length)]]
        for length in PREFIX_LENGTHS
    ]
    print_table(
        "Fig. 17: accuracy vs prefix length, shape changes with length (eps=4)",
        ["prefix length", "privshape", "patternldp"],
        rows,
    )

    privshape_mean = np.mean([accuracy[("privshape", length)] for length in PREFIX_LENGTHS])
    patternldp_mean = np.mean([accuracy[("patternldp", length)] for length in PREFIX_LENGTHS])
    assert privshape_mean > patternldp_mean
    # Utility stays reasonable (above chance) even on the hardest short prefixes.
    assert min(accuracy[("privshape", length)] for length in PREFIX_LENGTHS) > 0.5
