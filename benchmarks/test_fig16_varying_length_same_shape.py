"""Fig. 16 — varying the time-series length while the shape stays the same.

Paper setting: sine vs cosine waves, one full period sampled at
200 / 400 / 600 / 800 / 1000 points, ε = 4, t = 4, w = 10; classification
accuracy of PrivShape vs PatternLDP (random forest on clean data = ground
truth ≈ 1.0).
Paper outcome: PrivShape's accuracy is essentially flat in the length
(Compressive SAX collapses the extra samples), while PatternLDP degrades as
the series get longer because its fixed budget is spread over more samples.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    bench_users,
    mean_of,
    print_table,
)
from repro.core.pipeline import run_classification_task
from repro.datasets import trigonometric_waves

LENGTHS = (200, 400, 600, 800, 1000)


def _dataset(length: int):
    n = min(bench_users(), 12000)
    return trigonometric_waves(n_instances=n, length=length, rng=160 + length)


def test_fig16_varying_length_same_shape(benchmark):
    accuracy = {}

    def run_all():
        for length in LENGTHS:
            dataset = _dataset(length)
            for mechanism in ("privshape", "patternldp"):
                results = average_runs(
                    lambda seed, d=dataset, m=mechanism: run_classification_task(
                        d,
                        mechanism=m,
                        epsilon=4.0,
                        alphabet_size=4,
                        segment_length=10,
                        metric="sed",
                        evaluation_size=bench_eval_size(),
                        patternldp_train_size=400,
                        forest_size=10,
                        rng=seed,
                    ),
                    bench_trials(),
                    seed=161,
                )
                accuracy[(mechanism, length)] = mean_of(results, "accuracy")
        return accuracy

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [length, accuracy[("privshape", length)], accuracy[("patternldp", length)]]
        for length in LENGTHS
    ]
    print_table(
        "Fig. 16: accuracy vs series length, same shape (sine vs cosine, eps=4)",
        ["length", "privshape", "patternldp"],
        rows,
    )

    privshape_curve = [accuracy[("privshape", length)] for length in LENGTHS]
    # PrivShape stays useful across all lengths (a single unaveraged trial can
    # drop one point to near-chance; the paper averages 500 trials).
    assert min(privshape_curve) > 0.45
    assert max(privshape_curve) > 0.8
    # And on average it beats PatternLDP.
    assert np.mean(privshape_curve) > np.mean(
        [accuracy[("patternldp", length)] for length in LENGTHS]
    )
