"""Figs. 8, 10, 12 — the extracted shapes themselves (qualitative plots).

The paper plots the extracted shape curves for one run with a fixed seed:

* Fig. 8  — Symbols, clustering, ε = 4 (t = 6, w = 25);
* Fig. 10 — Trace, classification, ε = 4 (t = 4, w = 10);
* Fig. 12 — Trace, classification, ε = 8 (same setting as Fig. 10).

Here the "plot" is textual: for every mechanism the extracted symbol strings
are printed next to the ground-truth class shapes, together with the numeric
reconstruction of each symbol (the values one would plot).  The expected
qualitative outcome matches the paper: PrivShape's strings closely resemble
the ground truth, the Baseline's less so, and PatternLDP's are essentially
unrelated to the true shapes.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import bench_eval_size, print_table, symbols_dataset, trace_dataset
from repro.core.pipeline import run_classification_task, run_clustering_task
from repro.distance.registry import shape_distance
from repro.sax.reconstruction import symbols_to_values


def _closest_truth_distance(shapes: list[str], truth: list[str], alphabet_size: int) -> float:
    """Mean DTW distance from each extracted shape to its closest ground-truth shape."""
    if not shapes:
        return float("inf")
    distances = []
    for shape in shapes:
        distances.append(
            min(
                shape_distance(tuple(shape), tuple(t), metric="dtw", alphabet_size=alphabet_size)
                for t in truth
            )
        )
    return float(np.mean(distances))


def test_fig8_symbols_extracted_shapes(benchmark):
    results = {}

    def run_all():
        for mechanism in ("privshape", "baseline", "patternldp"):
            results[mechanism] = run_clustering_task(
                symbols_dataset(),
                mechanism=mechanism,
                epsilon=4.0,
                alphabet_size=6,
                segment_length=25,
                evaluation_size=bench_eval_size(),
                rng=2023,
            )
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    truth = results["privshape"].ground_truth_shapes
    rows = [["ground truth", " ".join(truth), 0.0]]
    for mechanism in ("privshape", "baseline", "patternldp"):
        shapes = results[mechanism].shapes
        rows.append(
            [mechanism, " ".join(shapes), _closest_truth_distance(shapes, truth, 6)]
        )
    print_table(
        "Fig. 8: extracted shapes (Symbols, eps=4, seed 2023)",
        ["source", "shapes", "mean DTW to closest truth"],
        rows,
    )
    assert rows[1][2] <= rows[3][2]  # PrivShape closer to truth than PatternLDP


def _trace_shape_rows(epsilon: float, seed: int) -> list[list]:
    results = {}
    for mechanism in ("privshape", "baseline", "patternldp"):
        results[mechanism] = run_classification_task(
            trace_dataset(),
            mechanism=mechanism,
            epsilon=epsilon,
            alphabet_size=4,
            segment_length=10,
            evaluation_size=bench_eval_size(),
            patternldp_train_size=600,
            forest_size=10,
            rng=seed,
        )
    truth = results["privshape"].ground_truth_shapes
    rows = [["ground truth", " ".join(truth), 0.0]]
    for mechanism in ("privshape", "baseline", "patternldp"):
        per_class = results[mechanism].shapes_by_class
        flat = [shapes[0] for _, shapes in sorted(per_class.items()) if shapes]
        rows.append([mechanism, " ".join(flat), _closest_truth_distance(flat, truth, 4)])
    return rows


def test_fig10_trace_extracted_shapes_eps4(benchmark):
    rows = benchmark.pedantic(lambda: _trace_shape_rows(4.0, 2023), rounds=1, iterations=1)
    print_table(
        "Fig. 10: extracted per-class shapes (Trace, eps=4, seed 2023)",
        ["source", "per-class shapes", "mean DTW to closest truth"],
        rows,
    )
    assert rows[1][2] <= rows[3][2]


def test_fig12_trace_extracted_shapes_eps8(benchmark):
    rows = benchmark.pedantic(lambda: _trace_shape_rows(8.0, 2023), rounds=1, iterations=1)
    print_table(
        "Fig. 12: extracted per-class shapes (Trace, eps=8, seed 2023)",
        ["source", "per-class shapes", "mean DTW to closest truth"],
        rows,
    )
    # Even at eps=8 PatternLDP does not preserve the shapes better than PrivShape.
    assert rows[1][2] <= rows[3][2]


def test_shape_reconstruction_values_printable():
    """The numeric reconstruction used for plotting is well-defined for any shape."""
    values = symbols_to_values(tuple("abcdef"), alphabet_size=6, repeat=3)
    assert values.size == 18
    assert np.all(np.diff(values[::3]) > 0)
