"""Table IV — quantitative measures of extracted shapes on the Trace task.

Paper setting: classification on the Trace dataset, ε = 4, SAX t = 4 / w = 10,
SED as the task metric.  Reports DTW / SED / Euclidean distances of the
per-class extracted shapes to the ground-truth class shapes, plus
classification accuracy.

Paper values (Table IV):
    PatternLDP  DTW 17.42  SED 7.70  Euclid 6.70  Accuracy 0.18
    Baseline    DTW 12.06  SED 3.34  Euclid 5.90  Accuracy 0.85
    PrivShape   DTW 12.06  SED 2.67  Euclid 4.89  Accuracy 0.87
Expected reproduction shape: PrivShape ≥ Baseline ≫ PatternLDP on accuracy,
and PrivShape's shape distances are the smallest.
"""

from __future__ import annotations

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    mean_measure,
    mean_of,
    print_table,
    trace_dataset,
)
from repro.core.pipeline import run_classification_task

MECHANISMS = ("patternldp", "baseline", "privshape")


def _run(mechanism: str, seed: int):
    return run_classification_task(
        trace_dataset(),
        mechanism=mechanism,
        epsilon=4.0,
        alphabet_size=4,
        segment_length=10,
        metric="sed",
        evaluation_size=bench_eval_size(),
        patternldp_train_size=800,
        forest_size=15,
        rng=seed,
    )


def test_table4_trace_shape_measures(benchmark):
    results_by_mechanism = {}

    def run_all():
        for mechanism in MECHANISMS:
            results_by_mechanism[mechanism] = average_runs(
                lambda seed, m=mechanism: _run(m, seed), max(bench_trials(), 3), seed=41
            )
        return results_by_mechanism

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for mechanism in MECHANISMS:
        results = results_by_mechanism[mechanism]
        rows.append(
            [
                mechanism,
                mean_measure(results, "dtw"),
                mean_measure(results, "sed"),
                mean_measure(results, "euclidean"),
                mean_of(results, "accuracy"),
            ]
        )
    print_table(
        "Table IV: quantitative measures of shapes (Trace, classification, eps=4)",
        ["mechanism", "DTW", "SED", "Euclidean", "Accuracy"],
        rows,
    )

    accuracy = {row[0]: row[4] for row in rows}
    sed = {row[0]: row[2] for row in rows}
    # The paper reports near-parity (0.87 vs 0.85) at 40k users averaged over
    # 500 trials; at this reproduction's scale (20k users, a few trials) the
    # two mechanisms fluctuate around parity with per-seed swings of ±0.15,
    # so the accuracy comparison uses a tolerance sized to that variance.
    # PrivShape's *shape* quality advantage (its defining claim) stays strict
    # below: its extracted shapes are the closest to the ground truth.
    assert accuracy["privshape"] >= accuracy["baseline"] - 0.12
    assert accuracy["privshape"] > accuracy["patternldp"] + 0.1
    assert sed["privshape"] <= sed["patternldp"] + 1e-9
    assert sed["privshape"] <= sed["baseline"] + 1e-9
