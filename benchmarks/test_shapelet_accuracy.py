"""Shapelet workload: accuracy-vs-ε trend and vectorized transform speedup.

Two artifacts:

* ``BENCH_shapelet_accuracy.json`` — downstream classification accuracy of
  ``task="shapelet"`` as the privacy budget rises, over two labelled
  datasets (the trace and waves stand-ins).  As with the paper's Table-V
  trends, the absolute numbers depend on the synthetic stand-ins; the
  assertion is the *trend*: a generous budget must beat a starved one.
* ``BENCH_shapelet_transform.json`` — throughput of the vectorized
  candidate × series distance kernel (:func:`min_distance_matrix`) against
  the historical scalar per-window Python loop, gated at ≥10x while agreeing
  to float tolerance.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.helpers import (
    bench_eval_size,
    bench_users,
    print_table,
    record_benchmark,
)
from repro.api import DataSpec, ExperimentSpec, PrivacySpec, SAXSpec
from repro.tasks.shapelet import min_distance_matrix

SEED = 424
EPSILONS = (0.5, 2.0, 6.0)

#: Transform-benchmark workload: candidates × series × points sized so the
#: scalar loop's per-window Python overhead dominates (the regime the
#: vectorization targets) while the whole benchmark stays CI-friendly.
N_SERIES = 60
SERIES_LENGTH = 160
N_SHAPELETS = 24
SHAPELET_LENGTH = 16
#: Acceptance gate from the issue: the batched kernel must be at least this
#: much faster than the scalar loop.
MIN_SPEEDUP = 10.0


def _scalar_min_distance(series: np.ndarray, values: np.ndarray) -> float:
    """The pre-vectorization per-window loop (frozen scalar reference)."""
    length = values.size
    if series.size < length:
        return float(
            np.linalg.norm(series - values[: series.size]) / max(series.size, 1)
        )
    best = np.inf
    for start in range(series.size - length + 1):
        distance = float(np.linalg.norm(series[start : start + length] - values))
        if distance < best:
            best = distance
    return best / length


def test_shapelet_accuracy_rises_with_epsilon():
    users = max(300, bench_users(2000) // 10)
    evaluation_size = min(150, bench_eval_size(150))
    spec_for = lambda eps: ExperimentSpec(  # noqa: E731
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=eps),
        sax=SAXSpec(alphabet_size=4),
    )
    rows = []
    trend: dict[str, dict[float, float]] = {}
    for source in ("trace", "waves"):
        data = DataSpec(source=source, n_users=users, seed=7)
        accuracies: dict[float, float] = {}
        for epsilon in EPSILONS:
            result = spec_for(epsilon).run(
                data, task="shapelet", seed=SEED,
                evaluation_size=evaluation_size,
            )
            accuracies[epsilon] = result.metrics["accuracy"]
        trend[source] = accuracies
        rows.append([source] + [f"{accuracies[e]:.3f}" for e in EPSILONS])

    print_table(
        "Shapelet classification accuracy vs epsilon",
        ["dataset"] + [f"eps={e:g}" for e in EPSILONS],
        rows,
    )
    for source, accuracies in trend.items():
        # The trend gate: the most generous budget beats the most starved
        # one (ties allowed only if the starved run already saturated).
        assert accuracies[EPSILONS[-1]] >= accuracies[EPSILONS[0]], source
        assert accuracies[EPSILONS[-1]] > 0.5, (
            f"{source}: shapelet pipeline should classify well at eps=6"
        )
    record_benchmark(
        "shapelet_accuracy",
        metric="accuracy_at_eps6_trace",
        value=trend["trace"][EPSILONS[-1]],
        units="fraction",
        seed=SEED,
        extra={
            "users": users,
            "evaluation_size": evaluation_size,
            "epsilons": list(EPSILONS),
            "accuracy": {
                source: {str(eps): value for eps, value in accuracies.items()}
                for source, accuracies in trend.items()
            },
        },
    )


def test_vectorized_transform_speedup():
    rng = np.random.default_rng(31)
    series_list = [rng.normal(size=SERIES_LENGTH) for _ in range(N_SERIES)]
    shapelets = [rng.normal(size=SHAPELET_LENGTH) for _ in range(N_SHAPELETS)]

    started = time.perf_counter()
    scalar = np.asarray([
        [_scalar_min_distance(series, values) for values in shapelets]
        for series in series_list
    ])
    scalar_seconds = time.perf_counter() - started

    started = time.perf_counter()
    vectorized = min_distance_matrix(series_list, shapelets)
    vectorized_seconds = time.perf_counter() - started

    assert np.allclose(scalar, vectorized, atol=1e-9), (
        "vectorized transform diverged from the scalar reference"
    )
    speedup = scalar_seconds / max(vectorized_seconds, 1e-9)
    pairs = N_SERIES * N_SHAPELETS
    throughput = pairs / max(vectorized_seconds, 1e-9)
    print_table(
        "Shapelet transform throughput (candidate x series min-distances)",
        ["variant", "seconds", "pairs/sec"],
        [
            ["scalar loop", f"{scalar_seconds:.4f}",
             f"{pairs / max(scalar_seconds, 1e-9):,.0f}"],
            ["vectorized", f"{vectorized_seconds:.4f}", f"{throughput:,.0f}"],
            ["speedup", f"{speedup:.1f}x", ""],
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"vectorized transform speedup {speedup:.1f}x is below the "
        f"{MIN_SPEEDUP:.0f}x gate"
    )
    record_benchmark(
        "shapelet_transform",
        metric="speedup_vs_scalar",
        value=speedup,
        units="x",
        seed=31,
        extra={
            "n_series": N_SERIES,
            "series_length": SERIES_LENGTH,
            "n_shapelets": N_SHAPELETS,
            "shapelet_length": SHAPELET_LENGTH,
            "scalar_seconds": scalar_seconds,
            "vectorized_seconds": vectorized_seconds,
            "pairs_per_second": throughput,
        },
    )
