"""Telemetry no-op overhead on the GRR encode hot path.

The observability layer's contract is "zero-overhead unless installed": with
no tracer/profiler installed, every ``profile_kernel``/``trace_span`` call
site costs one function call returning a shared null context manager.  This
benchmark times the instrumented GRR ``encode_batch`` path (the hottest
kernel call site, ``repro.service.rounds._encode_length``-shaped) against the
same loop with the hooks bypassed entirely, and asserts the no-op overhead
stays under the 2% acceptance gate.  A second measurement records the cost
with a *recording* profiler installed, which is allowed to be visible but
must stay small at realistic batch sizes.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.helpers import print_table, record_benchmark
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.obs import (
    PhaseProfiler,
    install_profiler,
    profile_kernel,
    uninstall_profiler,
)

#: Batch size of one encode call — matches the service's default report batch.
BATCH = 8192
#: Encode calls per timed repetition.
CALLS = 60
#: Timed repetitions; the median damps scheduler noise.
REPETITIONS = 9
#: Acceptance gate on the no-op (hooks present, nothing installed) overhead.
MAX_NOOP_OVERHEAD_PERCENT = 2.0


def _encode_loop(oracle, indices, user_ids, *, hooked: bool) -> None:
    if hooked:
        for call in range(CALLS):
            with profile_kernel("grr.encode_batch"):
                oracle.encode_batch(indices, user_ids, key=call)
    else:
        for call in range(CALLS):
            oracle.encode_batch(indices, user_ids, key=call)


def _median_seconds(fn) -> float:
    samples = []
    for _ in range(REPETITIONS):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    samples.sort()
    return samples[len(samples) // 2]


def test_noop_telemetry_overhead_is_under_the_gate():
    oracle = GeneralizedRandomizedResponse(4.0, domain=list("abcdef"))
    indices = np.arange(BATCH) % 6
    user_ids = np.arange(BATCH)

    # Warm both paths (imports, numpy buffers) before timing anything.
    _encode_loop(oracle, indices, user_ids, hooked=False)
    _encode_loop(oracle, indices, user_ids, hooked=True)

    bare = _median_seconds(
        lambda: _encode_loop(oracle, indices, user_ids, hooked=False)
    )
    noop = _median_seconds(
        lambda: _encode_loop(oracle, indices, user_ids, hooked=True)
    )
    noop_overhead = (noop - bare) / bare * 100.0

    profiler = PhaseProfiler()
    install_profiler(profiler)
    try:
        recording = _median_seconds(
            lambda: _encode_loop(oracle, indices, user_ids, hooked=True)
        )
    finally:
        uninstall_profiler()
    recording_overhead = (recording - bare) / bare * 100.0
    assert profiler.report()["kernels"]["grr.encode_batch"]["calls"] > 0

    reports = CALLS * BATCH
    print_table(
        "telemetry overhead on the GRR encode path "
        f"({BATCH} users/batch, {CALLS} calls, median of {REPETITIONS})",
        ["path", "seconds", "reports/sec", "overhead %"],
        [
            ["bare loop", f"{bare:.4f}", f"{reports / bare:,.0f}", "-"],
            ["no-op hooks", f"{noop:.4f}", f"{reports / noop:,.0f}",
             f"{noop_overhead:+.2f}"],
            ["recording profiler", f"{recording:.4f}",
             f"{reports / recording:,.0f}", f"{recording_overhead:+.2f}"],
        ],
    )
    record_benchmark(
        "telemetry_overhead",
        metric="noop_overhead_percent",
        value=noop_overhead,
        units="percent",
        seed=None,
        backend="inline",
        extra={
            "batch_size": BATCH,
            "calls_per_repetition": CALLS,
            "repetitions": REPETITIONS,
            "bare_seconds": bare,
            "noop_seconds": noop,
            "recording_seconds": recording,
            "recording_overhead_percent": recording_overhead,
            "gate_percent": MAX_NOOP_OVERHEAD_PERCENT,
        },
    )
    assert noop_overhead < MAX_NOOP_OVERHEAD_PERCENT, (
        f"no-op telemetry hooks cost {noop_overhead:.2f}% on the GRR encode "
        f"path (gate: {MAX_NOOP_OVERHEAD_PERCENT}%)"
    )
