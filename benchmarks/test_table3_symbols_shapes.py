"""Table III — quantitative measures of extracted shapes on the Symbols task.

Paper setting: clustering on the Symbols dataset, ε = 4, SAX t = 6 / w = 25,
DTW as the task metric.  For PatternLDP, the Baseline mechanism, and PrivShape
the table reports the DTW / SED / Euclidean distances between the extracted
shapes and the ground-truth class shapes, plus the clustering ARI.

Paper values (Table III):
    PatternLDP  DTW 38.97  SED 10.11  Euclid 46.30  ARI 0.00
    Baseline    DTW 32.74  SED 12.81  Euclid 35.86  ARI 0.45
    PrivShape   DTW 20.99  SED  1.83  Euclid  4.74  ARI 0.68
Expected reproduction shape: PrivShape has the smallest distances and the
highest ARI; PatternLDP's ARI is ≈ 0.
"""

from __future__ import annotations

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    mean_measure,
    mean_of,
    print_table,
    symbols_dataset,
)
from repro.core.pipeline import run_clustering_task

MECHANISMS = ("patternldp", "baseline", "privshape")


def _run(mechanism: str, seed: int):
    return run_clustering_task(
        symbols_dataset(),
        mechanism=mechanism,
        epsilon=4.0,
        alphabet_size=6,
        segment_length=25,
        metric="dtw",
        evaluation_size=bench_eval_size(),
        rng=seed,
    )


def test_table3_symbols_shape_measures(benchmark):
    rows = []
    results_by_mechanism = {}

    def run_all():
        for mechanism in MECHANISMS:
            results_by_mechanism[mechanism] = average_runs(
                lambda seed, m=mechanism: _run(m, seed), bench_trials(), seed=31
            )
        return results_by_mechanism

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    for mechanism in MECHANISMS:
        results = results_by_mechanism[mechanism]
        rows.append(
            [
                mechanism,
                mean_measure(results, "dtw"),
                mean_measure(results, "sed"),
                mean_measure(results, "euclidean"),
                mean_of(results, "ari"),
            ]
        )
    print_table(
        "Table III: quantitative measures of shapes (Symbols, clustering, eps=4)",
        ["mechanism", "DTW", "SED", "Euclidean", "ARI"],
        rows,
    )

    ari = {row[0]: row[4] for row in rows}
    distances = {row[0]: row[1] for row in rows}
    # PrivShape must dominate: best ARI, smallest DTW distance to ground truth.
    assert ari["privshape"] >= ari["baseline"] - 0.05
    assert ari["privshape"] > ari["patternldp"] + 0.2
    assert abs(ari["patternldp"]) < 0.15
    assert distances["privshape"] <= distances["patternldp"] + 1e-9
