"""Collection-service throughput: batch vs scalar LDP hot paths.

The round-based service replaces per-user Python loops with vectorized batch
encoding (PRF-keyed numpy sampling) and integer batch aggregation.  This
benchmark measures both:

* client side — reports/sec of the scalar ``perturb``-per-user loop vs the
  vectorized ``perturb_batch`` / ``encode_batch`` paths for GRR and OLH;
* server side — end-to-end reports/sec of ``ProtocolDriver`` streaming a
  synthetic population through sharded aggregation.

The vectorized paths must beat the scalar loops by a wide margin (we assert a
conservative 3x; typical machines see well over 20x), and the end-to-end
driver must clear a floor that makes million-user simulations practical.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.helpers import print_table, record_benchmark
from repro.core.config import PrivShapeConfig
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.ldp.olh import OptimizedLocalHashing
from repro.service import ProtocolDriver, SyntheticShapeStream, default_templates


def _reports_per_second(fn, n_reports: int) -> float:
    started = time.perf_counter()
    fn()
    elapsed = time.perf_counter() - started
    return n_reports / max(elapsed, 1e-9)


def _grr_throughputs(n_users: int) -> tuple[float, float, float]:
    oracle = GeneralizedRandomizedResponse(4.0, domain=list("abcdef"))
    values = [oracle.domain[i % 6] for i in range(n_users)]
    indices = np.arange(n_users) % 6
    user_ids = np.arange(n_users)
    scalar = _reports_per_second(lambda: oracle.perturb_many(values, rng=0), n_users)
    batch = _reports_per_second(lambda: oracle.perturb_batch(values, rng=0), n_users)
    prf = _reports_per_second(
        lambda: oracle.encode_batch(indices, user_ids, key=7), n_users
    )
    return scalar, batch, prf


def _olh_throughputs(n_users: int) -> tuple[float, float, float]:
    oracle = OptimizedLocalHashing(4.0, domain=list(range(30)))
    values = [i % 30 for i in range(n_users)]
    indices = np.arange(n_users) % 30
    user_ids = np.arange(n_users)

    def scalar_loop():
        generator = np.random.default_rng(0)
        return [oracle.perturb(value, generator) for value in values]

    scalar = _reports_per_second(scalar_loop, n_users)
    batch = _reports_per_second(lambda: oracle.perturb_batch(values, rng=0), n_users)
    prf = _reports_per_second(
        lambda: oracle.encode_batch(indices, user_ids, key=7), n_users
    )
    return scalar, batch, prf


def test_batch_perturbation_speedup(benchmark):
    """Vectorized batch encoding must decisively beat the scalar loop."""
    n_users = 50_000
    results = {}

    def run_all():
        results["grr"] = _grr_throughputs(n_users)
        results["olh"] = _olh_throughputs(n_users)
        return results

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = []
    for mechanism in ("grr", "olh"):
        scalar, batch, prf = results[mechanism]
        rows.append(
            [mechanism.upper(), scalar, batch, prf, batch / scalar, prf / scalar]
        )
    print_table(
        "Service throughput: per-user loop vs vectorized batch (reports/sec)",
        ["mechanism", "scalar loop", "perturb_batch", "encode_batch (PRF)",
         "batch speedup", "PRF speedup"],
        rows,
    )

    for mechanism in ("grr", "olh"):
        scalar, batch, prf = results[mechanism]
        record_benchmark(
            f"{mechanism}_encode_batch",
            metric="throughput",
            value=prf,
            units="reports/sec",
            seed=0,
            backend="inline",
            extra={"scalar_reports_per_sec": scalar, "batch_reports_per_sec": batch},
        )
        assert batch > 3.0 * scalar, f"{mechanism}: batch path should be >3x the scalar loop"
        assert prf > 3.0 * scalar, f"{mechanism}: PRF path should be >3x the scalar loop"


def test_streaming_driver_throughput(benchmark):
    """End-to-end round-based collection clears a practical throughput floor."""
    n_users = 200_000
    alphabet = ("a", "b", "c", "d")
    templates = default_templates(alphabet, n_templates=6, length=5, rng=0)
    population = SyntheticShapeStream(
        n_users=n_users,
        alphabet=alphabet,
        templates=tuple(templates),
        weights=tuple(1.0 / (rank + 1) for rank in range(len(templates))),
        seed=0,
        length_jitter=0.2,
    )
    config = PrivShapeConfig(
        epsilon=4.0, top_k=3, alphabet_size=4, metric="sed", length_low=1, length_high=5
    )
    driver = ProtocolDriver(config, population, batch_size=32768, n_shards=4)

    result = benchmark.pedantic(driver.run, rounds=1, iterations=1)

    stats = driver.stats
    rows = [
        [f"round {r.index} ({r.kind})", r.participants, r.elapsed_seconds, r.reports_per_second]
        for r in stats.rounds
    ]
    rows.append(["total", stats.total_reports, stats.total_seconds, stats.reports_per_second])
    print_table(
        "Streaming driver throughput (200k users, 4 shards)",
        ["stage", "reports", "seconds", "reports/sec"],
        rows,
    )

    record_benchmark(
        "streaming_driver",
        metric="throughput",
        value=stats.reports_per_second,
        units="reports/sec",
        seed=0,
        backend="inline",
        extra={"users": n_users, "shards": 4, "batch_size": 32768},
    )
    assert stats.total_reports == n_users
    assert result.shapes, "the simulated run must extract at least one shape"
    # Conservative floor: vectorized rounds run at hundreds of thousands of
    # reports/sec; anything under 20k/sec means a per-user loop crept back in.
    assert stats.reports_per_second > 20_000
