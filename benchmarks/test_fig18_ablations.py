"""Fig. 18 — ablations: PrivShape without SAX and without compression.

Paper setting: Trace classification, ε ∈ {1, 2, 3, 4}.

* (a) "Without SAX": values are discretized directly into 0.33-wide bins
  clipped at ±0.99 (eight segments) instead of PAA + SAX symbols.
* (b) "No Compression": plain SAX without the run-length collapse.

Paper outcome: both ablations lose utility compared to full PrivShape —
without SAX the symbols no longer average out noise, and without compression
the sequences are longer, so each trie level receives fewer users — but both
remain better than PatternLDP.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    mean_of,
    print_table,
    trace_dataset,
)
from repro.core.ablation import RawValueDiscretizer
from repro.core.pipeline import run_classification_task

EPSILONS = (1.0, 2.0, 3.0, 4.0)


def _run_variant(variant: str, epsilon: float, seed: int):
    dataset = trace_dataset()
    common = dict(
        epsilon=epsilon,
        alphabet_size=4,
        segment_length=10,
        metric="sed",
        evaluation_size=bench_eval_size(),
        patternldp_train_size=600,
        forest_size=10,
        rng=seed,
    )
    if variant == "privshape":
        return run_classification_task(dataset, mechanism="privshape", **common)
    if variant == "without sax":
        transformer = RawValueDiscretizer(stride=10)
        return run_classification_task(
            dataset, mechanism="privshape", transformer=transformer, **common
        )
    if variant == "no compression":
        return run_classification_task(
            dataset, mechanism="privshape", compress=False, length_high=20, **common
        )
    if variant == "patternldp":
        return run_classification_task(dataset, mechanism="patternldp", **common)
    raise ValueError(variant)


VARIANTS = ("privshape", "without sax", "no compression", "patternldp")


def test_fig18_ablations(benchmark):
    accuracy = {}

    def run_all():
        for variant in VARIANTS:
            for epsilon in EPSILONS:
                results = average_runs(
                    lambda seed, v=variant, e=epsilon: _run_variant(v, e, seed),
                    bench_trials(),
                    seed=181,
                )
                accuracy[(variant, epsilon)] = mean_of(results, "accuracy")
        return accuracy

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [epsilon] + [accuracy[(variant, epsilon)] for variant in VARIANTS]
        for epsilon in EPSILONS
    ]
    print_table(
        "Fig. 18: ablations on Trace classification (Without SAX / No Compression)",
        ["epsilon"] + list(VARIANTS),
        rows,
    )

    full = np.mean([accuracy[("privshape", e)] for e in EPSILONS[1:]])
    without_sax = np.mean([accuracy[("without sax", e)] for e in EPSILONS[1:]])
    no_compression = np.mean([accuracy[("no compression", e)] for e in EPSILONS[1:]])
    # Full PrivShape is at least as good as either ablation on average.
    assert full >= without_sax - 0.05
    assert full >= no_compression - 0.05
