"""Table V — execution time of the three mechanisms on both tasks at ε = 4.

Paper values (Table V, 40,000 users, 20-core Xeon, user operations treated as
concurrent):
    Clustering      Baseline 1.88 s   PrivShape 1.69 s   PatternLDP   9.98 s
    Classification  Baseline 1.21 s   PrivShape 1.14 s   PatternLDP 133.82 s
Expected reproduction shape: PrivShape is at least as fast as the Baseline
(better pruning), and PatternLDP is the slowest by a wide margin because it
perturbs every series and fits a downstream model on the perturbed values.
"""

from __future__ import annotations

from benchmarks.helpers import (
    bench_eval_size,
    print_table,
    record_benchmark,
    symbols_dataset,
    trace_dataset,
)
from repro.core.pipeline import run_classification_task, run_clustering_task


def _clustering_time(mechanism: str, seed: int) -> float:
    result = run_clustering_task(
        symbols_dataset(),
        mechanism=mechanism,
        epsilon=4.0,
        alphabet_size=6,
        segment_length=25,
        evaluation_size=bench_eval_size(),
        rng=seed,
    )
    return result.elapsed_seconds


def _classification_time(mechanism: str, seed: int) -> float:
    result = run_classification_task(
        trace_dataset(),
        mechanism=mechanism,
        epsilon=4.0,
        alphabet_size=4,
        segment_length=10,
        evaluation_size=bench_eval_size(),
        patternldp_train_size=800,
        forest_size=15,
        rng=seed,
    )
    return result.elapsed_seconds


def test_table5_execution_time(benchmark):
    timings = {}

    def run_all():
        for task, runner in (("clustering", _clustering_time), ("classification", _classification_time)):
            for mechanism in ("baseline", "privshape", "patternldp"):
                timings[(task, mechanism)] = runner(mechanism, seed=51)
        return timings

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [
            task,
            timings[(task, "baseline")],
            timings[(task, "privshape")],
            timings[(task, "patternldp")],
        ]
        for task in ("clustering", "classification")
    ]
    print_table(
        "Table V: execution time in seconds (eps=4)",
        ["task", "Baseline", "PrivShape", "PatternLDP"],
        rows,
    )
    for (task, mechanism), seconds in timings.items():
        record_benchmark(
            f"table5_{task}_{mechanism}",
            metric="execution_time",
            value=seconds,
            units="seconds",
            seed=51,
            backend="inline",
        )

    # PatternLDP pays for per-point perturbation + downstream model fitting and
    # is the slowest mechanism overall (summed over both tasks).  Per-task
    # orderings can be close for clustering because only the evaluation
    # subsample is perturbed there.
    patternldp_total = sum(timings[(task, "patternldp")] for task in ("clustering", "classification"))
    privshape_total = sum(timings[(task, "privshape")] for task in ("clustering", "classification"))
    baseline_total = sum(timings[(task, "baseline")] for task in ("clustering", "classification"))
    assert patternldp_total > privshape_total
    assert patternldp_total > baseline_total
