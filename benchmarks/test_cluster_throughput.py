"""Cluster throughput: coordinator/worker topology versus a single gateway.

Boots a supervised four-worker collection cluster (one coordinator process
thread, four OS-process shard workers) and drives a full PrivShape run at
``PRIVSHAPE_BENCH_CLUSTER_USERS`` users (default one million) through the
multi-process load generator, then runs the same population through one
single-process :class:`~repro.server.gateway.CollectionGateway` as the
baseline.  Both socket-driven runs must agree byte-for-byte with the
in-process streaming :class:`~repro.service.ProtocolDriver` — the cluster is
a performance topology, never a different estimator.

Results land in ``benchmarks/results/BENCH_gateway_cluster.json`` including
the measured cluster-over-gateway speedup.  The >=2.5x speedup floor is only
asserted when the host actually exposes four or more CPU cores; on smaller
hosts the ratio is still recorded so the trajectory stays attributable.
"""

from __future__ import annotations

import os

from benchmarks.helpers import print_table, record_benchmark
from repro.cluster import launch_cluster, run_cluster_loadgen
from repro.core.config import PrivShapeConfig
from repro.server import CollectionGateway, run_loadgen, serve_in_thread
from repro.service import ProtocolDriver, SyntheticShapeStream, default_templates

N_USERS = int(os.environ.get("PRIVSHAPE_BENCH_CLUSTER_USERS", 1_000_000))
N_WORKERS = 4
BATCH_SIZE = 16384
SEED = 0


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _population(n_users: int) -> SyntheticShapeStream:
    alphabet = ("a", "b", "c", "d")
    templates = default_templates(alphabet, n_templates=6, length=5, rng=0)
    return SyntheticShapeStream(
        n_users=n_users,
        alphabet=alphabet,
        templates=tuple(templates),
        weights=tuple(1.0 / (rank + 1) for rank in range(len(templates))),
        seed=SEED,
        length_jitter=0.2,
    )


def _config() -> PrivShapeConfig:
    return PrivShapeConfig(
        epsilon=4.0, top_k=3, alphabet_size=4, metric="sed", length_low=1, length_high=5
    )


def test_cluster_throughput(benchmark):
    """A 4-worker cluster must match the offline result and record its speedup."""
    population = _population(N_USERS)

    # Ground truth: the in-process streaming driver (constant memory, no
    # sockets) defines what every serving topology must reproduce exactly.
    reference = ProtocolDriver(
        _config(), population, batch_size=BATCH_SIZE, n_shards=N_WORKERS, rng=SEED
    ).run()
    reference_shapes = ["".join(shape) for shape in reference.shapes]

    # Baseline: one gateway process, the topology the cluster must beat.
    gateway = CollectionGateway(_config(), rng=SEED, n_shards=N_WORKERS, queue_depth=64)
    with serve_in_thread(gateway) as handle:
        single = run_loadgen(handle.host, handle.port, population, batch_size=BATCH_SIZE)

    # Contender: coordinator + 4 supervised shard-worker processes, loadgen
    # fanned out over 4 sender processes so encoding parallelises too.
    with launch_cluster(
        _config(), n_users=N_USERS, n_workers=N_WORKERS, rng=SEED, queue_depth=64
    ) as cluster:
        stats = benchmark.pedantic(
            lambda: run_cluster_loadgen(
                cluster.host,
                cluster.port,
                population,
                batch_size=BATCH_SIZE,
                workers=N_WORKERS,
                timeout=1800.0,
            ),
            rounds=1,
            iterations=1,
        )

    speedup = stats.reports_per_second / max(single.reports_per_second, 1e-9)
    rows = [
        ["gateway x1", single.total_reports, single.total_seconds, single.reports_per_second],
        [f"cluster x{N_WORKERS}", stats.total_reports, stats.total_seconds,
         stats.reports_per_second],
        ["speedup", "", "", speedup],
    ]
    print_table(
        f"Cluster vs single gateway ({N_USERS // 1000}k users, {N_WORKERS} workers)",
        ["topology", "reports", "seconds", "reports/sec"],
        rows,
    )
    record_benchmark(
        "gateway_cluster",
        metric="throughput",
        value=stats.reports_per_second,
        units="reports/sec",
        seed=SEED,
        backend="cluster",
        workers=N_WORKERS,
        extra={
            "users": N_USERS,
            "batch_size": BATCH_SIZE,
            "single_gateway_rps": single.reports_per_second,
            "speedup_vs_single_gateway": speedup,
            "cpu_cores": _cpu_count(),
            "transport": "tcp+ndjson+base64",
        },
    )

    # Correctness is unconditional: every user counted exactly once, and both
    # socket topologies reproduce the in-process extraction byte-for-byte.
    assert single.total_reports == N_USERS
    assert stats.total_reports == N_USERS
    assert single.result is not None and single.result["shapes"] == reference_shapes
    assert stats.result is not None and stats.result["shapes"] == reference_shapes
    assert stats.result["frequencies"] == single.result["frequencies"]

    # The speedup floor only means anything when the workers can actually run
    # in parallel; a 1-core container serialises the processes and measures
    # scheduler overhead, not the topology.
    if _cpu_count() >= 4:
        assert speedup >= 2.5, (
            f"4-worker cluster reached only {speedup:.2f}x the single gateway"
        )
