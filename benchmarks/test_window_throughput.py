"""Continual-collection throughput: window count and carry-over cost.

Drives the same drifting synthetic stream through the inline
:class:`~repro.continual.engine.ContinualEngine` at increasing window
counts, with trie carry-over on and off, and records how per-window wall
time and end-to-end report throughput respond.  Carry-over seeds each
window's trie from the previous window's surviving shapes, so its cost per
window should be flat (a decayed frequency injection), not growing with
history length.

Results land in ``benchmarks/results/BENCH_continual_windows.json``: the
headline number is the report throughput of the largest carry-over-enabled
configuration, with every (windows, carry-over) cell preserved in
``extra.grid``.
"""

from __future__ import annotations

import os
import time

from benchmarks.helpers import print_table, record_benchmark
from repro.continual import ContinualEngine, WindowSpec
from repro.core.config import PrivShapeConfig
from repro.service import DriftingShapeStream, default_templates

N_USERS = int(os.environ.get("PRIVSHAPE_BENCH_WINDOW_USERS", 120_000))
WINDOW_COUNTS = (1, 2, 4)
BATCH_SIZE = 8192
SEED = 0


def _population(n_users: int) -> DriftingShapeStream:
    alphabet = ("a", "b", "c", "d")
    templates = default_templates(alphabet, n_templates=6, length=5, rng=0)
    weights = tuple(1.0 / (rank + 1) for rank in range(len(templates)))
    return DriftingShapeStream(
        n_users=n_users,
        alphabet=alphabet,
        templates=tuple(templates),
        weights=weights,
        seed=SEED,
        length_jitter=0.2,
        breakpoints=(n_users // 2,),
        mixtures=(weights, tuple(reversed(weights))),
    )


def _config() -> PrivShapeConfig:
    return PrivShapeConfig(
        epsilon=4.0, top_k=3, alphabet_size=4, metric="sed",
        length_low=1, length_high=5,
    )


def _run_once(population, n_windows: int, carry_over: bool):
    windows = WindowSpec(
        length=population.n_users // n_windows,
        carry_over=carry_over,
        drift_threshold=2.0,  # never fires: this measures steady-state cost
    )
    started = time.perf_counter()
    outcome = ContinualEngine(
        _config(), windows, population, batch_size=BATCH_SIZE, seed=SEED
    ).run()
    elapsed = time.perf_counter() - started
    reports = sum(stats["total_reports"] for stats in outcome.timings)
    window_seconds = [stats["total_seconds"] for stats in outcome.timings]
    return {
        "windows": n_windows,
        "carry_over": carry_over,
        "elapsed_seconds": elapsed,
        "reports": reports,
        "reports_per_second": reports / max(elapsed, 1e-9),
        "window_seconds": [round(t, 4) for t in window_seconds],
        "mean_window_seconds": sum(window_seconds) / len(window_seconds),
    }


def test_window_throughput(benchmark):
    """Per-window wall time must not grow with window count or carry-over."""
    population = _population(N_USERS)
    grid = []
    for n_windows in WINDOW_COUNTS:
        for carry_over in (True, False):
            grid.append(_run_once(population, n_windows, carry_over))

    headline_spec = WindowSpec(
        length=N_USERS // WINDOW_COUNTS[-1], carry_over=True, drift_threshold=2.0
    )
    outcome = benchmark.pedantic(
        lambda: ContinualEngine(
            _config(), headline_spec, population, batch_size=BATCH_SIZE, seed=SEED
        ).run(),
        rounds=1,
        iterations=1,
    )
    headline = next(
        cell for cell in grid
        if cell["windows"] == WINDOW_COUNTS[-1] and cell["carry_over"]
    )

    print_table(
        f"Continual window throughput ({N_USERS // 1000}k users)",
        ["windows", "carry-over", "seconds", "reports/sec", "sec/window"],
        [
            [c["windows"], "on" if c["carry_over"] else "off",
             c["elapsed_seconds"], c["reports_per_second"],
             c["mean_window_seconds"]]
            for c in grid
        ],
    )
    record_benchmark(
        "continual_windows",
        metric="throughput",
        value=headline["reports_per_second"],
        units="reports/sec",
        seed=SEED,
        backend="inline",
        extra={
            "users": N_USERS,
            "batch_size": BATCH_SIZE,
            "window_counts": list(WINDOW_COUNTS),
            "grid": grid,
        },
    )

    # Every configuration covers the whole stream and stays within budget.
    assert len(outcome.windows) == WINDOW_COUNTS[-1]
    assert outcome.accounting["within_budget"]
    for cell in grid:
        assert len(cell["window_seconds"]) == cell["windows"]
