"""End-to-end gateway throughput: reports/sec over a real TCP socket.

Unlike ``test_service_throughput`` (in-process driver), this benchmark boots
the network-facing :class:`~repro.server.gateway.CollectionGateway` on an
ephemeral port and drives a full protocol run through the newline-delimited
JSON wire protocol — base64 report frames, per-shard bounded queues,
idempotency bookkeeping, and round closes all included — so the number below
is what an external load generator would actually observe.

Results land in ``benchmarks/results/`` as both a text table and
``BENCH_server_gateway.json``.
"""

from __future__ import annotations

from benchmarks.helpers import print_table, record_benchmark
from repro.core.config import PrivShapeConfig
from repro.server import CollectionGateway, run_loadgen, serve_in_thread
from repro.service import SyntheticShapeStream, default_templates

N_USERS = 100_000
N_SHARDS = 4


def _population(n_users: int) -> SyntheticShapeStream:
    alphabet = ("a", "b", "c", "d")
    templates = default_templates(alphabet, n_templates=6, length=5, rng=0)
    return SyntheticShapeStream(
        n_users=n_users,
        alphabet=alphabet,
        templates=tuple(templates),
        weights=tuple(1.0 / (rank + 1) for rank in range(len(templates))),
        seed=0,
        length_jitter=0.2,
    )


def test_gateway_socket_throughput(benchmark):
    """A full socket-driven run must clear a practical throughput floor."""
    config = PrivShapeConfig(
        epsilon=4.0, top_k=3, alphabet_size=4, metric="sed", length_low=1, length_high=5
    )
    population = _population(N_USERS)
    gateway = CollectionGateway(config, rng=0, n_shards=N_SHARDS, queue_depth=64)

    with serve_in_thread(gateway) as handle:
        stats = benchmark.pedantic(
            lambda: run_loadgen(
                handle.host, handle.port, population, batch_size=16384
            ),
            rounds=1,
            iterations=1,
        )

    rows = [
        [f"round {r.index} ({r.kind})", r.reports, r.elapsed_seconds, r.reports_per_second]
        for r in stats.rounds
    ]
    rows.append(["total", stats.total_reports, stats.total_seconds, stats.reports_per_second])
    print_table(
        f"Gateway socket throughput ({N_USERS // 1000}k users, {N_SHARDS} shards)",
        ["stage", "reports", "seconds", "reports/sec"],
        rows,
    )
    record_benchmark(
        "server_gateway",
        metric="throughput",
        value=stats.reports_per_second,
        units="reports/sec",
        seed=0,
        backend="gateway",
        workers=0,
        extra={
            "users": N_USERS,
            "shards": N_SHARDS,
            "batch_size": 16384,
            "transport": "tcp+ndjson+base64",
        },
    )

    assert stats.total_reports == N_USERS
    assert stats.result is not None and stats.result["shapes"], (
        "the socket-driven run must extract at least one shape"
    )
    # The wire (json + base64 + socket hops) costs real overhead versus the
    # in-process driver, but anything under 10k reports/sec would mean a
    # per-user loop or an unbounded stall crept into the gateway path.
    assert stats.reports_per_second > 10_000
