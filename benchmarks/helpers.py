"""Shared utilities for the benchmark harness.

Every benchmark reproduces one table or figure of the paper: it runs the
relevant mechanisms, prints the same rows/series the paper reports, and (via
pytest-benchmark) records the wall-clock time of one representative run.

Scale knobs (environment variables):

* ``PRIVSHAPE_BENCH_USERS``   — population size per dataset (default 20000;
  the paper uses 40000).
* ``PRIVSHAPE_BENCH_TRIALS``  — number of repetitions averaged per
  configuration (default 1; the paper averages 500).
* ``PRIVSHAPE_BENCH_EVAL``    — number of held-out series used to score
  ARI / accuracy (default 500).

Absolute numbers are not expected to match the paper (different hardware,
synthetic stand-in datasets, fewer trials); the comparisons that must hold are
the *orderings and trends*: PrivShape ≥ Baseline ≥ PatternLDP, utility rising
with ε, inverted-U in the SAX parameters, and PrivShape's robustness to series
length.
"""

from __future__ import annotations

import json
import os
import re
import subprocess
from functools import lru_cache
from pathlib import Path
from typing import Any

import numpy as np

import repro
from repro.datasets import symbols_like, trace_like

#: Directory where every reproduced table is also written as a text file, so
#: the results survive pytest's output capturing and can be pasted into
#: EXPERIMENTS.md.
RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_users(default: int = 20000) -> int:
    """Population size used by the benchmarks."""
    return int(os.environ.get("PRIVSHAPE_BENCH_USERS", default))


def bench_trials(default: int = 1) -> int:
    """Number of repetitions averaged per configuration."""
    return max(1, int(os.environ.get("PRIVSHAPE_BENCH_TRIALS", default)))


def bench_eval_size(default: int = 500) -> int:
    """Number of held-out series used for ARI / accuracy."""
    return int(os.environ.get("PRIVSHAPE_BENCH_EVAL", default))


@lru_cache(maxsize=None)
def symbols_dataset(seed: int = 101):
    """Session-cached Symbols-like dataset at benchmark scale."""
    return symbols_like(n_instances=bench_users(), rng=seed)


@lru_cache(maxsize=None)
def trace_dataset(seed: int = 102):
    """Session-cached Trace-like dataset at benchmark scale."""
    return trace_like(n_instances=bench_users(), rng=seed)


def average_runs(run_fn, trials: int, seed: int = 0) -> list:
    """Run ``run_fn(trial_seed)`` ``trials`` times and return the list of results."""
    return [run_fn(seed + trial) for trial in range(trials)]


def mean_of(results, attribute: str) -> float:
    """Mean of ``attribute`` over a list of result objects."""
    return float(np.mean([getattr(r, attribute) for r in results]))


def mean_measure(results, key: str) -> float:
    """Mean of one shape-measure entry over a list of task results."""
    return float(np.mean([r.shape_measures[key] for r in results]))


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print one experiment's table and persist it under ``benchmarks/results/``."""
    widths = [max(len(str(h)), *(len(_fmt(row[i])) for row in rows)) for i, h in enumerate(headers)]
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines = [f"=== {title} ===", header_line, "-" * len(header_line)]
    lines += ["  ".join(_fmt(cell).ljust(widths[i]) for i, cell in enumerate(row)) for row in rows]
    text = "\n".join(lines)
    print("\n" + text + "\n")

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")
    with open(RESULTS_DIR / f"{slug}.txt", "w", encoding="utf-8") as handle:
        handle.write(text + "\n")


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


@lru_cache(maxsize=1)
def git_commit() -> str | None:
    """The current commit hash (``-dirty`` if uncommitted changes exist).

    The suffix matters: benchmark numbers produced from a modified work tree
    must not be attributed to the clean commit whose code did not run them.
    Returns None outside a work tree.
    """
    cwd = Path(__file__).resolve().parent

    def _git(*argv: str) -> str | None:
        try:
            completed = subprocess.run(
                ["git", *argv], capture_output=True, text=True, timeout=10,
                cwd=cwd,
            )
        except (OSError, subprocess.SubprocessError):
            return None
        if completed.returncode != 0:
            return None
        return completed.stdout

    head = (_git("rev-parse", "HEAD") or "").strip()
    if not head:
        return None
    # The suite rewrites tracked files under benchmarks/results/ while it
    # runs; exclude them or every run on a pristine commit reads as dirty.
    status = _git("status", "--porcelain", "--", ":!results")
    dirty = status is None or bool(status.strip())
    return head + ("-dirty" if dirty else "")


def record_benchmark(
    name: str,
    *,
    metric: str,
    value: float,
    units: str,
    seed: int | None = None,
    backend: str = "inline",
    workers: int | None = None,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Persist one machine-readable benchmark result next to the ``.txt`` tables.

    Every performance benchmark writes a ``BENCH_<name>.json`` document under
    ``benchmarks/results/`` with one headline metric plus context — including
    the package version, the git commit, the execution backend, and the host
    envelope (CPU count, peak RSS) that produced the number — so the perf
    trajectory across commits is attributable by tooling instead of by
    eyeballing captured stdout.
    """
    from repro.service.metrics import cpu_count, peak_rss_bytes

    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")
    payload: dict[str, Any] = {
        "name": slug,
        "metric": metric,
        "value": float(value),
        "units": units,
        "seed": seed,
        "backend": backend,
        "workers": workers,
        "bench_users": bench_users(),
        "bench_trials": bench_trials(),
        "cpu_count": cpu_count(),
        "peak_rss_bytes": peak_rss_bytes(),
        "repro_version": repro.__version__,
        "git_commit": git_commit(),
    }
    if extra:
        payload.update(extra)
    path = RESULTS_DIR / f"BENCH_{slug}.json"
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
