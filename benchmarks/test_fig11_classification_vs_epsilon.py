"""Fig. 11 — classification accuracy on Trace as the privacy budget ε varies.

Paper setting: ε ∈ {0.1, 0.5, 1, 1.5, ..., 8}, Trace dataset, t = 4, w = 10.
Paper outcome: PrivShape reaches high accuracy already at ε ≤ 2 and stays on
top; the Baseline follows slightly below; PatternLDP + random forest hovers
around 0.4–0.6 and only becomes competitive at very large budgets.
"""

from __future__ import annotations

import numpy as np

from benchmarks.helpers import (
    average_runs,
    bench_eval_size,
    bench_trials,
    mean_of,
    print_table,
    trace_dataset,
)
from repro.core.pipeline import run_classification_task

EPSILONS = (0.1, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0)
MECHANISMS = ("privshape", "baseline", "patternldp")


def _run(mechanism: str, epsilon: float, seed: int):
    return run_classification_task(
        trace_dataset(),
        mechanism=mechanism,
        epsilon=epsilon,
        alphabet_size=4,
        segment_length=10,
        metric="sed",
        evaluation_size=bench_eval_size(),
        patternldp_train_size=600,
        forest_size=10,
        rng=seed,
    )


def test_fig11_classification_accuracy_vs_epsilon(benchmark):
    accuracy = {}

    def run_all():
        for mechanism in MECHANISMS:
            for epsilon in EPSILONS:
                results = average_runs(
                    lambda seed, m=mechanism, e=epsilon: _run(m, e, seed),
                    bench_trials(),
                    seed=111,
                )
                accuracy[(mechanism, epsilon)] = mean_of(results, "accuracy")
        return accuracy

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [epsilon] + [accuracy[(mechanism, epsilon)] for mechanism in MECHANISMS]
        for epsilon in EPSILONS
    ]
    print_table(
        "Fig. 11: classification accuracy vs privacy budget (Trace)",
        ["epsilon", "privshape", "baseline", "patternldp+rf"],
        rows,
    )

    privshape_curve = [accuracy[("privshape", e)] for e in EPSILONS]
    patternldp_curve = [accuracy[("patternldp", e)] for e in EPSILONS]
    # PrivShape improves with budget and outperforms PatternLDP on average
    # over the moderate-budget regime the paper highlights (eps >= 1).
    assert privshape_curve[-1] > privshape_curve[0]
    assert np.mean(privshape_curve[2:]) > np.mean(patternldp_curve[2:])
    # PrivShape is already useful at small budgets (paper: remarkable at eps <= 2).
    assert accuracy[("privshape", 2.0)] > 0.55
