"""Tests for the private shapelet-discovery extension."""

import numpy as np
import pytest

from repro.datasets import trace_like
from repro.exceptions import EmptyDatasetError, NotFittedError
from repro.extensions.shapelets import (
    PrivateShapeletDiscovery,
    Shapelet,
    ShapeletTransformClassifier,
    best_information_gain,
    enumerate_candidates,
    sliding_min_distance,
)
from repro.mining.metrics import accuracy_score


class TestSlidingMinDistance:
    def test_exact_subsequence_is_zero(self):
        series = np.array([0.0, 1.0, 2.0, 3.0, 2.0, 1.0])
        assert sliding_min_distance(series, [2.0, 3.0, 2.0]) == pytest.approx(0.0)

    def test_shorter_series_than_shapelet(self):
        value = sliding_min_distance([1.0, 1.0], [1.0, 1.0, 5.0])
        assert value == pytest.approx(0.0)

    def test_distance_positive_for_mismatch(self):
        assert sliding_min_distance([0.0, 0.0, 0.0], [5.0, 5.0]) > 0


class TestEnumerateCandidates:
    def test_windows_generated(self):
        shapes = {0: [("a", "b", "c")], 1: [("d", "c")]}
        candidates = enumerate_candidates(shapes, alphabet_size=4, min_length=2)
        lengths = {c.length for c in candidates}
        # windows of 2 and 3 symbols at 8 points per symbol
        assert lengths == {16, 24}
        assert any(c.source_class == 1 for c in candidates)

    def test_no_duplicates(self):
        shapes = {0: [("a", "b"), ("a", "b")]}
        candidates = enumerate_candidates(shapes, alphabet_size=4, min_length=2)
        assert len(candidates) == 1

    def test_max_length_respected(self):
        shapes = {0: [("a", "b", "c", "d")]}
        candidates = enumerate_candidates(shapes, alphabet_size=4, min_length=2, max_length=2)
        assert all(c.length == 16 for c in candidates)


class TestBestInformationGain:
    def test_perfect_split(self):
        distances = [0.1, 0.2, 0.15, 5.0, 6.0, 5.5]
        labels = [0, 0, 0, 1, 1, 1]
        gain, threshold = best_information_gain(distances, labels)
        assert gain == pytest.approx(1.0)
        assert 0.2 < threshold < 5.0

    def test_no_information(self):
        gain, _ = best_information_gain([1.0, 1.0, 1.0, 1.0], [0, 1, 0, 1])
        assert gain == pytest.approx(0.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            best_information_gain([], [])
        with pytest.raises(ValueError):
            best_information_gain([1.0], [0, 1])


class TestPrivateShapeletDiscovery:
    @pytest.fixture(scope="class")
    def datasets(self):
        private = trace_like(n_instances=2500, rng=31)
        public = trace_like(n_instances=120, rng=32)
        return private, public

    def test_discovery_returns_ranked_shapelets(self, datasets):
        private, public = datasets
        discovery = PrivateShapeletDiscovery(
            epsilon=6.0, alphabet_size=4, segment_length=10, n_shapelets=4
        )
        shapelets = discovery.discover(private, public, rng=0)
        assert 1 <= len(shapelets) <= 4
        assert all(isinstance(s, Shapelet) for s in shapelets)
        gains = [s.gain for s in shapelets]
        assert gains == sorted(gains, reverse=True)
        assert gains[0] > 0.1

    def test_discovered_shapelets_stored_on_instance(self, datasets):
        private, public = datasets
        discovery = PrivateShapeletDiscovery(
            epsilon=6.0, alphabet_size=4, segment_length=10, n_shapelets=3
        )
        shapelets = discovery.discover(private, public, rng=5)
        assert discovery.shapelets_ == shapelets

    def test_shapelet_classifier_end_to_end(self, datasets):
        private, public = datasets
        discovery = PrivateShapeletDiscovery(
            epsilon=6.0, alphabet_size=4, segment_length=10, n_shapelets=5
        )
        shapelets = discovery.discover(private, public, rng=1)
        train, test = public.train_test_split(test_fraction=0.4, rng=2)
        classifier = ShapeletTransformClassifier(shapelets=shapelets, n_estimators=10, rng=3)
        classifier.fit(train.series, train.labels)
        predictions = classifier.predict(test.series)
        assert accuracy_score(test.labels, predictions) > 0.5

    def test_classifier_requires_fit(self, datasets):
        _, public = datasets
        classifier = ShapeletTransformClassifier(
            shapelets=[Shapelet(values=(0.0, 1.0), source_shape=("a",), source_class=0)]
        )
        with pytest.raises(NotFittedError):
            classifier.predict(public.series[:2])

    def test_classifier_rejects_empty_shapelets(self, datasets):
        _, public = datasets
        classifier = ShapeletTransformClassifier(shapelets=[])
        with pytest.raises(EmptyDatasetError):
            classifier.fit(public.series, public.labels)


class TestShimCompatibility:
    """The module is now a shim over repro.tasks.shapelet — results must match
    the historical scalar loop bit for bit (default arguments)."""

    def test_sliding_min_distance_matches_scalar_loop(self):
        rng = np.random.default_rng(23)
        for _ in range(25):
            series = rng.normal(size=int(rng.integers(1, 60)))
            shapelet = rng.normal(size=int(rng.integers(1, 12)))
            length = shapelet.size
            if series.size < length:
                expected = float(
                    np.linalg.norm(series - shapelet[: series.size])
                    / max(series.size, 1)
                )
            else:
                expected = min(
                    float(np.linalg.norm(series[s : s + length] - shapelet))
                    for s in range(series.size - length + 1)
                ) / length
            assert sliding_min_distance(series, shapelet) == pytest.approx(
                expected, abs=1e-12
            )

    def test_normalized_distance_applies_sigma_floor(self):
        """The documented σ_min floor: constant windows stay finite."""
        distance = sliding_min_distance(
            np.full(12, 7.0), [0.0, 1.0, 0.0], normalize=True
        )
        assert np.isfinite(distance)

    def test_sigma_min_exported(self):
        from repro.extensions.shapelets import SIGMA_MIN

        assert SIGMA_MIN == 1e-3
