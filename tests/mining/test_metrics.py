"""Tests for ARI, accuracy, and the contingency table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataShapeError
from repro.mining.metrics import accuracy_score, adjusted_rand_index, contingency_table

_labels = st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=40)


class TestContingencyTable:
    def test_basic(self):
        table = contingency_table([0, 0, 1, 1], [0, 1, 0, 1])
        assert table.shape == (2, 2)
        assert table.sum() == 4

    def test_rows_are_true_classes(self):
        table = contingency_table([0, 0, 0, 1], [1, 1, 0, 0])
        assert table.sum(axis=1).tolist() == [3, 1]

    def test_mismatched_lengths(self):
        with pytest.raises(DataShapeError):
            contingency_table([0, 1], [0])

    def test_empty(self):
        with pytest.raises(DataShapeError):
            contingency_table([], [])


class TestAdjustedRandIndex:
    def test_perfect_agreement(self):
        assert adjusted_rand_index([0, 0, 1, 1, 2, 2], [0, 0, 1, 1, 2, 2]) == pytest.approx(1.0)

    def test_permuted_labels_still_perfect(self):
        assert adjusted_rand_index([0, 0, 1, 1], [5, 5, 3, 3]) == pytest.approx(1.0)

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(0)
        true = rng.integers(0, 3, size=3000)
        predicted = rng.integers(0, 3, size=3000)
        assert abs(adjusted_rand_index(true, predicted)) < 0.05

    def test_single_cluster_prediction(self):
        value = adjusted_rand_index([0, 0, 1, 1], [0, 0, 0, 0])
        assert value == pytest.approx(0.0, abs=1e-9)

    def test_known_sklearn_value(self):
        """Reference value computed with scikit-learn 1.3 for this exact input."""
        true = [0, 0, 0, 1, 1, 1]
        predicted = [0, 0, 1, 1, 2, 2]
        assert adjusted_rand_index(true, predicted) == pytest.approx(0.24242424, abs=1e-6)

    @given(_labels)
    @settings(max_examples=40)
    def test_property_identity_is_one(self, labels):
        assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)

    @given(_labels)
    @settings(max_examples=40)
    def test_property_symmetric(self, labels):
        rng = np.random.default_rng(len(labels))
        other = rng.integers(0, 3, size=len(labels)).tolist()
        assert adjusted_rand_index(labels, other) == pytest.approx(
            adjusted_rand_index(other, labels)
        )

    @given(_labels)
    @settings(max_examples=40)
    def test_property_bounded(self, labels):
        rng = np.random.default_rng(len(labels) + 1)
        other = rng.integers(0, 4, size=len(labels)).tolist()
        value = adjusted_rand_index(labels, other)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score([1, 2, 3], [1, 2, 3]) == 1.0

    def test_half(self):
        assert accuracy_score([0, 0, 1, 1], [0, 1, 1, 0]) == 0.5

    def test_mismatched_lengths(self):
        with pytest.raises(DataShapeError):
            accuracy_score([0, 1], [0, 1, 2])
