"""Tests for the from-scratch time-series KMeans."""

import numpy as np
import pytest

from repro.exceptions import EmptyDatasetError, NotFittedError
from repro.mining.kmeans import TimeSeriesKMeans
from repro.mining.metrics import adjusted_rand_index


def _blobs(n_per_cluster=30, length=20, separation=4.0, seed=0):
    rng = np.random.default_rng(seed)
    series, labels = [], []
    for cluster in range(3):
        center = np.sin(np.linspace(0, 2 * np.pi, length)) + cluster * separation
        for _ in range(n_per_cluster):
            series.append(center + rng.normal(0, 0.3, size=length))
            labels.append(cluster)
    return series, np.array(labels)


class TestTimeSeriesKMeans:
    def test_recovers_well_separated_clusters(self):
        series, labels = _blobs()
        model = TimeSeriesKMeans(n_clusters=3, metric="euclidean", rng=0)
        predicted = model.fit_predict(series)
        assert adjusted_rand_index(labels, predicted) > 0.95

    def test_labels_and_centers_shapes(self):
        series, _ = _blobs(n_per_cluster=10)
        model = TimeSeriesKMeans(n_clusters=3, rng=1).fit(series)
        assert model.labels_.size == 30
        assert len(model.cluster_centers_) == 3

    def test_predict_on_new_data(self):
        series, labels = _blobs(n_per_cluster=20, seed=2)
        model = TimeSeriesKMeans(n_clusters=3, rng=2).fit(series)
        new_series, new_labels = _blobs(n_per_cluster=5, seed=3)
        predicted = model.predict(new_series)
        assert adjusted_rand_index(new_labels, predicted) > 0.9

    def test_predict_before_fit_raises(self):
        with pytest.raises(NotFittedError):
            TimeSeriesKMeans(n_clusters=2).predict([[1.0, 2.0]])

    def test_empty_dataset_raises(self):
        with pytest.raises(EmptyDatasetError):
            TimeSeriesKMeans(n_clusters=2).fit([])

    def test_variable_length_series_accepted(self):
        rng = np.random.default_rng(4)
        series = [rng.normal(size=rng.integers(15, 25)) for _ in range(12)]
        model = TimeSeriesKMeans(n_clusters=2, rng=4).fit(series)
        assert model.labels_.size == 12

    def test_dtw_metric_runs(self):
        series, labels = _blobs(n_per_cluster=8, length=12, seed=5)
        model = TimeSeriesKMeans(n_clusters=3, metric="dtw", rng=5, max_iter=10, n_init=1)
        predicted = model.fit_predict(series)
        assert adjusted_rand_index(labels, predicted) > 0.8

    def test_invalid_metric(self):
        with pytest.raises(ValueError):
            TimeSeriesKMeans(n_clusters=2, metric="cosine")

    def test_inertia_non_negative(self):
        series, _ = _blobs(n_per_cluster=5)
        model = TimeSeriesKMeans(n_clusters=3, rng=6).fit(series)
        assert model.inertia_ >= 0

    def test_reproducible_with_seed(self):
        series, _ = _blobs(n_per_cluster=10, seed=7)
        a = TimeSeriesKMeans(n_clusters=3, rng=123).fit_predict(series)
        b = TimeSeriesKMeans(n_clusters=3, rng=123).fit_predict(series)
        assert np.array_equal(a, b)
