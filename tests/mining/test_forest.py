"""Tests for the decision tree and random forest classifiers."""

import numpy as np
import pytest

from repro.exceptions import DataShapeError, NotFittedError
from repro.mining.forest import RandomForestClassifier, series_to_matrix
from repro.mining.metrics import accuracy_score
from repro.mining.tree import DecisionTreeClassifier


def _classification_data(n=200, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 6))
    y = (X[:, 0] + 0.5 * X[:, 2] > 0).astype(int)
    return X, y


class TestDecisionTree:
    def test_fits_simple_rule(self):
        X, y = _classification_data()
        tree = DecisionTreeClassifier(max_depth=4, rng=0).fit(X, y)
        assert accuracy_score(y, tree.predict(X)) > 0.9

    def test_predict_proba_shape_and_normalization(self):
        X, y = _classification_data(n=80, seed=1)
        tree = DecisionTreeClassifier(rng=1).fit(X, y)
        probabilities = tree.predict_proba(X)
        assert probabilities.shape == (80, 2)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_pure_node_becomes_leaf(self):
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([1, 1, 1])
        tree = DecisionTreeClassifier(rng=2).fit(X, y)
        assert np.array_equal(tree.predict(X), y)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict([[1.0]])

    def test_shape_validation(self):
        with pytest.raises(DataShapeError):
            DecisionTreeClassifier().fit(np.zeros(5), np.zeros(5, dtype=int))
        with pytest.raises(DataShapeError):
            DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_max_features_sqrt(self):
        X, y = _classification_data(n=60, seed=3)
        tree = DecisionTreeClassifier(max_features="sqrt", rng=3).fit(X, y)
        assert tree.predict(X).shape == (60,)


class TestRandomForest:
    def test_better_than_chance_on_noisy_rule(self):
        X, y = _classification_data(n=300, seed=4)
        forest = RandomForestClassifier(n_estimators=15, rng=4).fit(X, y)
        assert accuracy_score(y, forest.predict(X)) > 0.9

    def test_generalizes_to_test_split(self):
        X, y = _classification_data(n=400, seed=5)
        forest = RandomForestClassifier(n_estimators=15, rng=5).fit(X[:300], y[:300])
        assert accuracy_score(y[300:], forest.predict(X[300:])) > 0.8

    def test_predict_proba_normalized(self):
        X, y = _classification_data(n=100, seed=6)
        forest = RandomForestClassifier(n_estimators=5, rng=6).fit(X, y)
        probabilities = forest.predict_proba(X)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            RandomForestClassifier().predict([[0.0, 1.0]])

    def test_three_class_problem(self):
        rng = np.random.default_rng(7)
        X = rng.normal(size=(240, 4))
        y = np.digitize(X[:, 1], [-0.5, 0.5])
        forest = RandomForestClassifier(n_estimators=15, rng=7).fit(X, y)
        assert accuracy_score(y, forest.predict(X)) > 0.85

    def test_fit_series_and_predict_series(self):
        rng = np.random.default_rng(8)
        series = [np.full(rng.integers(20, 30), float(label)) + rng.normal(0, 0.1, 1)
                  for label in (0, 1) for _ in range(20)]
        labels = np.array([0] * 20 + [1] * 20)
        forest = RandomForestClassifier(n_estimators=10, rng=8).fit_series(series, labels)
        predictions = forest.predict_series(series)
        assert accuracy_score(labels, predictions) > 0.9


class TestSeriesToMatrix:
    def test_resamples_to_common_length(self):
        matrix = series_to_matrix([[1.0, 2.0], [1.0, 2.0, 3.0, 4.0]])
        assert matrix.shape == (2, 4)

    def test_explicit_length(self):
        matrix = series_to_matrix([[1.0, 2.0, 3.0]], length=10)
        assert matrix.shape == (1, 10)

    def test_empty_dataset(self):
        with pytest.raises(DataShapeError):
            series_to_matrix([])
