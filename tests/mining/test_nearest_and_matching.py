"""Tests for nearest-shape assignment and shape-to-ground-truth matching."""

import numpy as np
import pytest

from repro.datasets import trace_like
from repro.exceptions import EmptyDatasetError
from repro.mining.matching import match_shapes_to_ground_truth, shape_quality_measures
from repro.mining.nearest import NearestShapeClassifier, assign_to_shapes
from repro.sax.compressive import CompressiveSAX


class TestAssignToShapes:
    def test_exact_matches_assigned(self):
        sequences = [("a", "b", "c"), ("c", "b", "a")]
        shapes = [("a", "b", "c"), ("c", "b", "a")]
        assert assign_to_shapes(sequences, shapes, metric="sed").tolist() == [0, 1]

    def test_nearest_by_distance(self):
        sequences = [("a", "b", "d")]
        shapes = [("a", "b", "c"), ("d", "c", "a")]
        assert assign_to_shapes(sequences, shapes, metric="sed").tolist() == [0]

    def test_empty_shapes_rejected(self):
        with pytest.raises(EmptyDatasetError):
            assign_to_shapes([("a",)], [])

    def test_output_length(self):
        sequences = [("a",), ("b",), ("c",)]
        shapes = [("a",), ("b",)]
        assert assign_to_shapes(sequences, shapes, metric="sed").shape == (3,)


class TestNearestShapeClassifier:
    def test_classifies_trace_like_data(self):
        dataset = trace_like(n_instances=150, rng=0)
        transformer = CompressiveSAX(alphabet_size=4, segment_length=10)
        # Build the classifier from the true per-class modal shapes.
        from collections import Counter

        labelled = {}
        for label in dataset.classes:
            shapes = [
                transformer.transform(s)
                for s, y in zip(dataset.series, dataset.labels)
                if y == label
            ]
            labelled[int(label)] = [Counter(shapes).most_common(1)[0][0]]
        classifier = NearestShapeClassifier(
            labelled_shapes=labelled, transformer=transformer, metric="sed"
        )
        predictions = classifier.predict(dataset.series)
        accuracy = float(np.mean(predictions == dataset.labels))
        assert accuracy > 0.8

    def test_empty_shapes_rejected(self):
        transformer = CompressiveSAX(alphabet_size=4, segment_length=10)
        with pytest.raises(EmptyDatasetError):
            NearestShapeClassifier(labelled_shapes={}, transformer=transformer)

    def test_predict_sequence_returns_known_label(self):
        transformer = CompressiveSAX(alphabet_size=4, segment_length=10)
        classifier = NearestShapeClassifier(
            labelled_shapes={3: [("a", "b", "c")], 7: [("d", "c", "b")]},
            transformer=transformer,
            metric="sed",
        )
        assert classifier.predict_sequence(("a", "b", "d")) == 3
        assert classifier.predict_sequence(("d", "c", "a")) == 7


class TestMatching:
    def test_identity_matching(self):
        shapes = [("a", "b"), ("c", "d"), ("b", "a")]
        pairs = match_shapes_to_ground_truth(shapes, shapes, metric="sed")
        assert sorted(pairs) == [(0, 0), (1, 1), (2, 2)]

    def test_permuted_matching(self):
        extracted = [("c", "d"), ("a", "b")]
        truth = [("a", "b"), ("c", "d")]
        pairs = match_shapes_to_ground_truth(extracted, truth, metric="sed")
        assert sorted(pairs) == [(0, 1), (1, 0)]

    def test_empty_inputs(self):
        assert match_shapes_to_ground_truth([], [("a",)]) == []
        assert match_shapes_to_ground_truth([("a",)], []) == []

    def test_fewer_extracted_than_truth(self):
        pairs = match_shapes_to_ground_truth([("a", "b")], [("a", "b"), ("c", "d")], metric="sed")
        assert len(pairs) == 1

    def test_quality_measures_zero_for_perfect_extraction(self):
        shapes = [("a", "b", "c"), ("d", "c", "b")]
        measures = shape_quality_measures(shapes, shapes, alphabet_size=4)
        assert measures["sed"] == pytest.approx(0.0)
        assert measures["dtw"] == pytest.approx(0.0)

    def test_quality_measures_penalize_missing_shapes(self):
        truth = [("a", "b", "c"), ("d", "c", "b")]
        partial = shape_quality_measures([("a", "b", "c")], truth, alphabet_size=4)
        full = shape_quality_measures(truth, truth, alphabet_size=4)
        assert partial["sed"] > full["sed"]

    def test_quality_measures_empty_extraction_is_infinite(self):
        measures = shape_quality_measures([], [("a", "b")], alphabet_size=4)
        assert measures["dtw"] == float("inf")

    def test_quality_measures_monotone_in_error(self):
        truth = [("a", "b", "c", "d")]
        close = shape_quality_measures([("a", "b", "c", "c")], truth, alphabet_size=4)
        far = shape_quality_measures([("d", "c", "b", "a")], truth, alphabet_size=4)
        assert close["dtw"] < far["dtw"]
