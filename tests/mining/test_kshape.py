"""Tests for KShape clustering."""

import numpy as np
import pytest

from repro.exceptions import EmptyDatasetError, NotFittedError
from repro.mining.kshape import KShape, shape_based_distance
from repro.mining.metrics import adjusted_rand_index


class TestShapeBasedDistance:
    def test_identical_is_zero(self):
        series = np.sin(np.linspace(0, 4 * np.pi, 50))
        assert shape_based_distance(series, series) == pytest.approx(0.0, abs=1e-9)

    def test_shift_invariance(self):
        # SBD uses linear (not circular) cross-correlation, so a rolled sine is
        # matched only approximately; the distance must still be small.
        t = np.linspace(0, 4 * np.pi, 80)
        assert shape_based_distance(np.sin(t), np.roll(np.sin(t), 8)) < 0.15

    def test_scale_invariance(self):
        t = np.linspace(0, 4 * np.pi, 60)
        assert shape_based_distance(np.sin(t), 5.0 * np.sin(t)) == pytest.approx(0.0, abs=1e-9)

    def test_different_shapes_positive(self):
        t = np.linspace(0, 2 * np.pi, 60)
        assert shape_based_distance(np.sin(3 * t), np.linspace(-1, 1, 60)) > 0.2

    def test_bounded_by_two(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            d = shape_based_distance(rng.normal(size=30), rng.normal(size=30))
            assert 0.0 <= d <= 2.0 + 1e-9


class TestKShape:
    def _dataset(self, seed=0, n_per=15, length=60):
        rng = np.random.default_rng(seed)
        t = np.linspace(0, 2 * np.pi, length)
        templates = [np.sin(2 * t), np.sign(np.sin(2 * t)), np.abs(np.sin(t)) * 2 - 1]
        series, labels = [], []
        for label, template in enumerate(templates):
            for _ in range(n_per):
                series.append(template + rng.normal(0, 0.15, size=length))
                labels.append(label)
        return series, np.array(labels)

    def test_recovers_shape_clusters(self):
        series, labels = self._dataset()
        model = KShape(n_clusters=3, rng=1)
        predicted = model.fit_predict(series)
        assert adjusted_rand_index(labels, predicted) > 0.5

    def test_centers_are_normalized(self):
        series, _ = self._dataset(seed=2, n_per=8)
        model = KShape(n_clusters=3, rng=2).fit(series)
        for center in model.cluster_centers_:
            assert center.std() == pytest.approx(1.0, abs=1e-6) or np.allclose(center, 0)

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            KShape(n_clusters=2).predict([[1.0, 2.0, 3.0]])

    def test_empty_dataset(self):
        with pytest.raises(EmptyDatasetError):
            KShape(n_clusters=2).fit([])

    def test_predict_after_fit(self):
        series, labels = self._dataset(seed=3, n_per=10)
        model = KShape(n_clusters=3, rng=3).fit(series)
        predicted = model.predict(series[:5])
        assert predicted.shape == (5,)
