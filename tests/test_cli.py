"""Tests for the command-line interface."""

import json

import pytest

from repro import __version__
from repro.api import DataSpec, ExperimentSpec, PrivacySpec, SweepSpec
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        """``repro --version`` prints the single-sourced package version."""
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_extract_defaults(self):
        args = build_parser().parse_args(["extract"])
        assert args.command == "extract"
        assert args.epsilon == 4.0
        assert args.mechanism == "privshape"

    def test_sweep_epsilons(self):
        args = build_parser().parse_args(["sweep", "--epsilons", "1", "2", "4"])
        assert args.epsilons == [1.0, 2.0, 4.0]

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["extract", "--mechanism", "magic"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.task == "extract"
        assert args.backend == "inline"
        assert args.dataset == "trace"

    def test_run_accepts_every_backend(self):
        for backend in ("inline", "sharded", "gateway", "subprocess"):
            args = build_parser().parse_args(["run", "--backend", backend])
            assert args.backend == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--backend", "quantum"])

    def test_sweep_grid_flags(self):
        args = build_parser().parse_args(
            ["sweep", "--task", "extract", "--mechanisms", "privshape", "baseline",
             "--alphabet-sizes", "3", "4", "--datasets", "trace", "symbols",
             "--backend", "gateway", "--parallel", "2"]
        )
        assert args.mechanisms == ["privshape", "baseline"]
        assert args.alphabet_sizes == [3, 4]
        assert args.datasets == ["trace", "symbols"]
        assert args.backend == "gateway"
        assert args.parallel == 2


class TestCommands:
    def test_extract_on_small_trace(self, capsys):
        exit_code = main(
            [
                "extract",
                "--dataset", "trace",
                "--users", "600",
                "--epsilon", "6",
                "--seed", "1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "top shapes:" in output
        assert "effective user-level epsilon" in output

    def test_extract_baseline_mechanism(self, capsys):
        exit_code = main(
            [
                "extract",
                "--dataset", "trace",
                "--users", "500",
                "--mechanism", "baseline",
                "--seed", "2",
            ]
        )
        assert exit_code == 0
        assert "mechanism: baseline" in capsys.readouterr().out

    def test_classify_on_small_trace(self, capsys):
        exit_code = main(
            [
                "classify",
                "--dataset", "trace",
                "--users", "900",
                "--epsilon", "6",
                "--evaluation-size", "100",
                "--seed", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "accuracy" in output
        assert "per-class shapes:" in output

    def test_cluster_on_small_symbols(self, capsys):
        exit_code = main(
            [
                "cluster",
                "--dataset", "symbols",
                "--users", "900",
                "--epsilon", "6",
                "--evaluation-size", "100",
                "--seed", "4",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "ARI" in output

    def test_sweep_runs_each_epsilon(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--task", "classify",
                "--dataset", "trace",
                "--users", "700",
                "--epsilons", "2", "6",
                "--evaluation-size", "80",
                "--seed", "5",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert output.count("\n") >= 4

    def test_simulate_streams_small_population(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--users", "20000",
                "--batch-size", "4096",
                "--shards", "2",
                "--epsilon", "6",
                "--seed", "7",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "reports/sec" in output
        assert "top shapes:" in output

    def test_ucr_file_input(self, tmp_path, capsys):
        lines = []
        for i in range(120):
            label = 1 if i % 2 else 2
            values = [0.1 * (j + (5 if label == 1 else 0)) for j in range(40)]
            lines.append("\t".join([str(label)] + [f"{v:.3f}" for v in values]))
        path = tmp_path / "toy_TRAIN.tsv"
        path.write_text("\n".join(lines) + "\n")
        exit_code = main(
            [
                "extract",
                "--ucr-file", str(path),
                "--epsilon", "6",
                "--alphabet-size", "4",
                "--segment-length", "5",
                "--seed", "6",
            ]
        )
        assert exit_code == 0
        assert "top shapes:" in capsys.readouterr().out


class TestJsonOutput:
    """Every sub-command must emit one valid JSON document with --json."""

    def _run_json(self, capsys, argv):
        exit_code = main(argv + ["--json"])
        assert exit_code == 0
        return json.loads(capsys.readouterr().out)

    def test_extract_json(self, capsys):
        payload = self._run_json(
            capsys,
            ["extract", "--dataset", "trace", "--users", "600", "--epsilon", "6",
             "--seed", "1"],
        )
        assert payload["command"] == "extract"
        assert payload["estimated_length"] >= 1
        assert all("shape" in entry for entry in payload["shapes"])
        assert payload["accounting"]["within_budget"] is True

    def test_cluster_json(self, capsys):
        payload = self._run_json(
            capsys,
            ["cluster", "--dataset", "symbols", "--users", "900", "--epsilon", "6",
             "--evaluation-size", "100", "--seed", "4"],
        )
        assert payload["command"] == "cluster"
        assert "ari" in payload
        assert isinstance(payload["shapes"], list)

    def test_classify_json(self, capsys):
        payload = self._run_json(
            capsys,
            ["classify", "--dataset", "trace", "--users", "900", "--epsilon", "6",
             "--evaluation-size", "100", "--seed", "3"],
        )
        assert payload["command"] == "classify"
        assert 0.0 <= payload["accuracy"] <= 1.0
        assert payload["shapes_by_class"]

    def test_sweep_json(self, capsys):
        payload = self._run_json(
            capsys,
            ["sweep", "--task", "classify", "--dataset", "trace", "--users", "700",
             "--epsilons", "2", "6", "--evaluation-size", "80", "--seed", "5"],
        )
        assert payload["command"] == "sweep"
        assert [point["epsilon"] for point in payload["points"]] == [2.0, 6.0]

    def test_simulate_json(self, capsys):
        payload = self._run_json(
            capsys,
            ["simulate", "--users", "20000", "--batch-size", "4096", "--epsilon", "6",
             "--seed", "7"],
        )
        assert payload["command"] == "simulate"
        assert payload["throughput"]["total_reports"] == 20000
        assert payload["throughput"]["reports_per_second"] > 0
        assert len(payload["throughput"]["rounds"]) >= 3
        assert payload["shapes"]


class TestRunCommand:
    """The canonical `repro run` path: one spec, one backend, one RunResult."""

    def _run_json(self, capsys, argv):
        exit_code = main(argv + ["--json"])
        assert exit_code == 0
        return json.loads(capsys.readouterr().out)

    def test_run_extract_synthetic(self, capsys):
        payload = self._run_json(
            capsys,
            ["run", "--dataset", "synthetic", "--users", "2000", "--seed", "11"],
        )
        assert payload["command"] == "run"
        assert payload["task"] == "extract"
        assert payload["backend"] == "inline"
        assert payload["estimates"]
        assert payload["timings"]["total_reports"] == 2000

    def test_run_matches_legacy_extract(self, capsys):
        """`run --task extract` and the deprecated `extract` shim agree."""
        run_payload = self._run_json(
            capsys,
            ["run", "--dataset", "trace", "--users", "600", "--epsilon", "6",
             "--seed", "1"],
        )
        with pytest.deprecated_call():
            extract_payload = self._run_json(
                capsys,
                ["extract", "--dataset", "trace", "--users", "600",
                 "--epsilon", "6", "--seed", "1"],
            )
        assert run_payload["estimates"] == extract_payload["estimates"]
        assert run_payload["accounting"] == extract_payload["accounting"]

    def test_run_task_cluster(self, capsys):
        payload = self._run_json(
            capsys,
            ["run", "--task", "cluster", "--dataset", "symbols",
             "--users", "900", "--epsilon", "6", "--evaluation-size", "100",
             "--seed", "4"],
        )
        assert payload["task"] == "cluster"
        assert -1.0 <= payload["ari"] <= 1.0

    def test_run_gateway_backend_matches_inline(self, capsys):
        inline = self._run_json(
            capsys,
            ["run", "--dataset", "synthetic", "--users", "2000", "--seed", "7"],
        )
        gateway = self._run_json(
            capsys,
            ["run", "--dataset", "synthetic", "--users", "2000", "--seed", "7",
             "--backend", "gateway", "--shards", "2"],
        )
        assert gateway["backend"] == "gateway"
        assert gateway["estimates"] == inline["estimates"]
        assert gateway["accounting"] == inline["accounting"]

    def test_run_data_spec_file(self, tmp_path, capsys):
        data = DataSpec(source="synthetic", n_users=1500, seed=3)
        path = tmp_path / "population.json"
        path.write_text(data.to_json())
        payload = self._run_json(
            capsys, ["run", "--data-spec", str(path), "--seed", "3"]
        )
        assert payload["data"]["n_users"] == 1500

    def test_simulate_is_deprecated_but_working(self, capsys):
        with pytest.deprecated_call():
            exit_code = main(
                ["simulate", "--users", "5000", "--batch-size", "2048",
                 "--epsilon", "6", "--seed", "7", "--json"]
            )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["throughput"]["total_reports"] == 5000


class TestSweepCommand:
    def _run_json(self, capsys, argv):
        exit_code = main(argv + ["--json"])
        assert exit_code == 0
        return json.loads(capsys.readouterr().out)

    def test_extract_grid_sweep(self, capsys):
        payload = self._run_json(
            capsys,
            ["sweep", "--task", "extract", "--dataset", "synthetic",
             "--users", "1500", "--epsilons", "2", "6",
             "--alphabet-sizes", "3", "4", "--seed", "5"],
        )
        assert payload["command"] == "sweep"
        assert len(payload["runs"]) == 4
        assert [
            (p["alphabet_size"], p["epsilon"]) for p in payload["points"]
        ] == [(3, 2.0), (3, 6.0), (4, 2.0), (4, 6.0)]

    def test_sweep_spec_file_round_trip(self, tmp_path, capsys):
        sweep = SweepSpec(
            base=ExperimentSpec(mechanism="privshape",
                                privacy=PrivacySpec(epsilon=6.0)),
            task="extract",
            epsilons=(6.0,),
            datasets=(DataSpec(source="synthetic", n_users=1200, seed=2),),
        )
        path = tmp_path / "sweep.json"
        path.write_text(sweep.to_json())
        payload = self._run_json(capsys, ["sweep", "--sweep-spec", str(path)])
        assert len(payload["runs"]) == 1
        assert payload["runs"][0]["data"]["n_users"] == 1200


class TestJsonSchema:
    """`--json` key naming is normalized across sub-commands (no eps/ARI
    spelling drift): every run-shaped payload carries the RunResult document
    plus identical convenience keys."""

    REQUIRED = ("command", "format", "task", "backend", "spec", "estimates",
                "shapes", "mechanism", "epsilon", "dataset", "users",
                "accounting", "metrics", "timings", "data", "repro_version")

    def _run_json(self, capsys, argv):
        exit_code = main(argv + ["--json"])
        assert exit_code == 0
        return json.loads(capsys.readouterr().out)

    @pytest.mark.parametrize(
        "argv",
        [
            ["run", "--dataset", "synthetic", "--users", "1500", "--seed", "1"],
            ["cluster", "--dataset", "symbols", "--users", "600",
             "--epsilon", "6", "--evaluation-size", "60", "--seed", "4"],
            ["classify", "--dataset", "trace", "--users", "600",
             "--epsilon", "6", "--evaluation-size", "60", "--seed", "3"],
        ],
    )
    def test_common_schema(self, capsys, argv):
        payload = self._run_json(capsys, argv)
        for key in self.REQUIRED:
            assert key in payload, f"{argv[0]}: missing {key}"
        # Normalized spellings: epsilon (never eps), lowercase metric names.
        assert "eps" not in payload
        assert "ARI" not in payload
        assert payload["epsilon"] == payload["spec"]["privacy"]["epsilon"]
        for entry in payload["shapes"]:
            assert set(entry) >= {"shape", "estimated_count"}
        if payload["task"] == "cluster":
            assert isinstance(payload["ari"], float)
        if payload["task"] == "classify":
            assert isinstance(payload["accuracy"], float)
            assert payload["shapes_by_class"]

    def test_sweep_metric_names_are_lowercase(self, capsys):
        payload = self._run_json(
            capsys,
            ["sweep", "--task", "cluster", "--dataset", "symbols",
             "--users", "600", "--epsilons", "6", "--evaluation-size", "60",
             "--seed", "4"],
        )
        assert payload["metric_name"] == "ari"
        assert all("ari" in point for point in payload["points"])
        assert all("ARI" not in point for point in payload["points"])


class TestServeAndLoadgen:
    def test_loadgen_against_gateway_matches_simulate(self, capsys):
        """``repro loadgen`` against a served gateway reproduces exactly what
        ``repro simulate`` computes in-process from the same seed/flags."""
        from repro.cli import _serving_spec
        from repro.server import CollectionGateway, serve_in_thread

        simulate_exit = main(
            ["simulate", "--users", "8000", "--batch-size", "2048", "--epsilon", "6",
             "--seed", "7", "--json"]
        )
        assert simulate_exit == 0
        simulate_payload = json.loads(capsys.readouterr().out)

        args = build_parser().parse_args(
            ["serve", "--epsilon", "6", "--seed", "7"]
        )
        gateway = CollectionGateway(_serving_spec(args), rng=7, n_shards=2)
        with serve_in_thread(gateway) as handle:
            exit_code = main(
                ["loadgen", "--host", handle.host, "--port", str(handle.port),
                 "--users", "8000", "--batch-size", "2048", "--seed", "7", "--json"]
            )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "loadgen"
        assert payload["total_reports"] == 8000
        assert payload["result"]["shapes"] == [
            entry["shape"] for entry in simulate_payload["shapes"]
        ]
        assert payload["result"]["frequencies"] == [
            entry["estimated_count"] for entry in simulate_payload["shapes"]
        ]

    def test_loadgen_unreachable_gateway_fails_cleanly(self):
        with pytest.raises(SystemExit, match="load generation failed"):
            main(["loadgen", "--port", "1", "--users", "100"])

    def test_serve_resume_without_checkpoint_dir_rejected(self):
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["serve", "--resume"])

    def test_serve_rejects_unresolved_spec(self, tmp_path):
        from repro import ExperimentSpec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(ExperimentSpec(mechanism="privshape").to_json())
        with pytest.raises(SystemExit, match="unresolved"):
            main(["serve", "--spec", str(spec_path)])


class TestClusterCli:
    """`repro cluster` stays the paper's evaluation; the nested serve/status/
    stop sub-commands (and `loadgen --cluster`) manage the collection
    cluster."""

    def test_bare_cluster_is_the_evaluation(self):
        args = build_parser().parse_args(["cluster"])
        assert args.handler.__name__ == "_command_cluster"
        assert args.cluster_command is None

    def test_cluster_serve_defaults(self):
        args = build_parser().parse_args(["cluster", "serve"])
        assert args.handler.__name__ == "_command_cluster_serve"
        assert args.workers == 2
        assert args.users == 100_000
        assert args.port == 0

    def test_cluster_status_and_stop_parse(self):
        status = build_parser().parse_args(["cluster", "status", "--port", "9"])
        assert status.handler.__name__ == "_command_cluster_status"
        assert status.port == 9
        stop = build_parser().parse_args(["cluster", "stop", "--port", "9"])
        assert stop.handler.__name__ == "_command_cluster_stop"

    def test_loadgen_cluster_and_chaos_flags(self):
        args = build_parser().parse_args(
            ["loadgen", "--port", "1", "--cluster", "--chaos-kill-round", "1"]
        )
        assert args.cluster is True
        assert args.chaos_kill_round == 1
        assert args.chaos_kill_worker == 0  # default target
        assert args.chaos_kill_after == 1
        plain = build_parser().parse_args(["loadgen", "--port", "1"])
        assert plain.cluster is False
        assert plain.chaos_kill_round is None

    def test_cluster_loadgen_matches_simulate(self, capsys):
        """`repro loadgen --cluster` against a live coordinator reproduces
        exactly what `repro simulate` computes in-process, and the --json
        payload carries the machine-readable summary block."""
        from repro.cli import _serving_spec
        from repro.cluster import launch_cluster

        simulate_exit = main(
            ["simulate", "--users", "4000", "--batch-size", "1024", "--epsilon", "6",
             "--seed", "7", "--json"]
        )
        assert simulate_exit == 0
        simulate_payload = json.loads(capsys.readouterr().out)

        serve_args = build_parser().parse_args(["serve", "--epsilon", "6", "--seed", "7"])
        with launch_cluster(
            _serving_spec(serve_args), n_users=4000, n_workers=2, rng=7
        ) as cluster:
            exit_code = main(
                ["loadgen", "--cluster", "--host", cluster.host,
                 "--port", str(cluster.port), "--users", "4000",
                 "--batch-size", "1024", "--seed", "7", "--json"]
            )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "loadgen"
        assert payload["cluster"] is True
        assert payload["total_reports"] == 4000
        assert payload["result"]["shapes"] == [
            entry["shape"] for entry in simulate_payload["shapes"]
        ]
        summary = payload["summary"]
        assert summary["reports_sent"] == 4000
        assert summary["batches"] >= 1
        assert summary["retries"] == 0
        assert summary["wall_seconds"] > 0
        assert summary["reports_per_second"] > 0


class TestWindowsCommand:
    """`repro windows`: continual collection over a scripted-drift stream."""

    def _run_json(self, capsys, argv):
        exit_code = main(argv + ["--json"])
        assert exit_code == 0
        return json.loads(capsys.readouterr().out)

    def test_window_length_is_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["windows"])

    def test_defaults(self):
        args = build_parser().parse_args(["windows", "--window-length", "500"])
        assert args.command == "windows"
        assert args.dataset == "synthetic"
        assert args.budget_renewal == "per_window"
        assert args.no_carry_over is False
        assert args.refresh is False
        assert args.breakpoints == []

    def test_tumbling_run_renews_budget_per_window(self, capsys):
        payload = self._run_json(
            capsys,
            ["windows", "--users", "3000", "--window-length", "1000",
             "--epsilon", "6", "--seed", "7"],
        )
        assert payload["command"] == "windows"
        assert payload["format"] == "repro.run_sequence/v1"
        assert len(payload["results"]) == 3
        accounting = payload["continual"]["accounting"]
        assert accounting["window_epsilons"] == {"0": 6.0, "1": 6.0, "2": 6.0}
        assert accounting["user_horizon"] == 1
        assert accounting["within_budget"] is True
        for result in payload["results"]:
            assert result["data"]["final"] is True
            assert result["estimates"]

    def test_refresh_with_breakpoint_triggers_reextraction(self, capsys):
        payload = self._run_json(
            capsys,
            ["windows", "--users", "12000", "--window-length", "4000",
             "--epsilon", "6", "--breakpoints", "8000",
             "--drift-threshold", "0.2", "--refresh", "--seed", "7"],
        )
        # Windows 0-1 share the base mixture; window 2 crosses the scripted
        # breakpoint: its refresh probe fires and a full re-run supersedes it.
        modes = [
            (r["data"]["window"], r["data"]["mode"], r["data"]["final"])
            for r in payload["results"]
        ]
        assert modes == [
            (0, "full", True),
            (1, "refresh", True),
            (2, "refresh", False),
            (2, "full", True),
        ]
        fired = [
            r["data"]["window"]
            for r in payload["results"]
            if (r["details"]["drift"] or {}).get("fired")
        ]
        assert fired == [2]

    def test_gateway_backend_matches_inline(self, capsys):
        argv = ["windows", "--users", "3000", "--window-length", "1000",
                "--epsilon", "6", "--seed", "7"]
        inline = self._run_json(capsys, argv)
        gateway = self._run_json(
            capsys, argv + ["--backend", "gateway", "--shards", "2"]
        )
        for a, b in zip(inline["results"], gateway["results"]):
            assert a["estimates"] == b["estimates"]
            assert a["seed"] == b["seed"]
            assert a["accounting"] == b["accounting"]
        assert (
            inline["continual"]["accounting"] == gateway["continual"]["accounting"]
        )

    def test_text_output_summarizes_windows(self, capsys):
        exit_code = main(
            ["windows", "--users", "2000", "--window-length", "1000",
             "--epsilon", "6", "--seed", "3"]
        )
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "window 0" in out
        assert "window 1" in out
        assert "user-level" in out
