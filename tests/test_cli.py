"""Tests for the command-line interface."""

import json

import pytest

from repro import __version__
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version_flag(self, capsys):
        """``repro --version`` prints the single-sourced package version."""
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_extract_defaults(self):
        args = build_parser().parse_args(["extract"])
        assert args.command == "extract"
        assert args.epsilon == 4.0
        assert args.mechanism == "privshape"

    def test_sweep_epsilons(self):
        args = build_parser().parse_args(["sweep", "--epsilons", "1", "2", "4"])
        assert args.epsilons == [1.0, 2.0, 4.0]

    def test_unknown_mechanism_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["extract", "--mechanism", "magic"])


class TestCommands:
    def test_extract_on_small_trace(self, capsys):
        exit_code = main(
            [
                "extract",
                "--dataset", "trace",
                "--users", "600",
                "--epsilon", "6",
                "--seed", "1",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "top shapes:" in output
        assert "effective user-level epsilon" in output

    def test_extract_baseline_mechanism(self, capsys):
        exit_code = main(
            [
                "extract",
                "--dataset", "trace",
                "--users", "500",
                "--mechanism", "baseline",
                "--seed", "2",
            ]
        )
        assert exit_code == 0
        assert "mechanism: baseline" in capsys.readouterr().out

    def test_classify_on_small_trace(self, capsys):
        exit_code = main(
            [
                "classify",
                "--dataset", "trace",
                "--users", "900",
                "--epsilon", "6",
                "--evaluation-size", "100",
                "--seed", "3",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "accuracy" in output
        assert "per-class shapes:" in output

    def test_cluster_on_small_symbols(self, capsys):
        exit_code = main(
            [
                "cluster",
                "--dataset", "symbols",
                "--users", "900",
                "--epsilon", "6",
                "--evaluation-size", "100",
                "--seed", "4",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "ARI" in output

    def test_sweep_runs_each_epsilon(self, capsys):
        exit_code = main(
            [
                "sweep",
                "--task", "classify",
                "--dataset", "trace",
                "--users", "700",
                "--epsilons", "2", "6",
                "--evaluation-size", "80",
                "--seed", "5",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert output.count("\n") >= 4

    def test_simulate_streams_small_population(self, capsys):
        exit_code = main(
            [
                "simulate",
                "--users", "20000",
                "--batch-size", "4096",
                "--shards", "2",
                "--epsilon", "6",
                "--seed", "7",
            ]
        )
        output = capsys.readouterr().out
        assert exit_code == 0
        assert "reports/sec" in output
        assert "top shapes:" in output

    def test_ucr_file_input(self, tmp_path, capsys):
        lines = []
        for i in range(120):
            label = 1 if i % 2 else 2
            values = [0.1 * (j + (5 if label == 1 else 0)) for j in range(40)]
            lines.append("\t".join([str(label)] + [f"{v:.3f}" for v in values]))
        path = tmp_path / "toy_TRAIN.tsv"
        path.write_text("\n".join(lines) + "\n")
        exit_code = main(
            [
                "extract",
                "--ucr-file", str(path),
                "--epsilon", "6",
                "--alphabet-size", "4",
                "--segment-length", "5",
                "--seed", "6",
            ]
        )
        assert exit_code == 0
        assert "top shapes:" in capsys.readouterr().out


class TestJsonOutput:
    """Every sub-command must emit one valid JSON document with --json."""

    def _run_json(self, capsys, argv):
        exit_code = main(argv + ["--json"])
        assert exit_code == 0
        return json.loads(capsys.readouterr().out)

    def test_extract_json(self, capsys):
        payload = self._run_json(
            capsys,
            ["extract", "--dataset", "trace", "--users", "600", "--epsilon", "6",
             "--seed", "1"],
        )
        assert payload["command"] == "extract"
        assert payload["estimated_length"] >= 1
        assert all("shape" in entry for entry in payload["shapes"])
        assert payload["accounting"]["within_budget"] is True

    def test_cluster_json(self, capsys):
        payload = self._run_json(
            capsys,
            ["cluster", "--dataset", "symbols", "--users", "900", "--epsilon", "6",
             "--evaluation-size", "100", "--seed", "4"],
        )
        assert payload["command"] == "cluster"
        assert "ari" in payload
        assert isinstance(payload["shapes"], list)

    def test_classify_json(self, capsys):
        payload = self._run_json(
            capsys,
            ["classify", "--dataset", "trace", "--users", "900", "--epsilon", "6",
             "--evaluation-size", "100", "--seed", "3"],
        )
        assert payload["command"] == "classify"
        assert 0.0 <= payload["accuracy"] <= 1.0
        assert payload["shapes_by_class"]

    def test_sweep_json(self, capsys):
        payload = self._run_json(
            capsys,
            ["sweep", "--task", "classify", "--dataset", "trace", "--users", "700",
             "--epsilons", "2", "6", "--evaluation-size", "80", "--seed", "5"],
        )
        assert payload["command"] == "sweep"
        assert [point["epsilon"] for point in payload["points"]] == [2.0, 6.0]

    def test_simulate_json(self, capsys):
        payload = self._run_json(
            capsys,
            ["simulate", "--users", "20000", "--batch-size", "4096", "--epsilon", "6",
             "--seed", "7"],
        )
        assert payload["command"] == "simulate"
        assert payload["throughput"]["total_reports"] == 20000
        assert payload["throughput"]["reports_per_second"] > 0
        assert len(payload["throughput"]["rounds"]) >= 3
        assert payload["shapes"]


class TestServeAndLoadgen:
    def test_loadgen_against_gateway_matches_simulate(self, capsys):
        """``repro loadgen`` against a served gateway reproduces exactly what
        ``repro simulate`` computes in-process from the same seed/flags."""
        from repro.cli import _serving_spec
        from repro.server import CollectionGateway, serve_in_thread

        simulate_exit = main(
            ["simulate", "--users", "8000", "--batch-size", "2048", "--epsilon", "6",
             "--seed", "7", "--json"]
        )
        assert simulate_exit == 0
        simulate_payload = json.loads(capsys.readouterr().out)

        args = build_parser().parse_args(
            ["serve", "--epsilon", "6", "--seed", "7"]
        )
        gateway = CollectionGateway(_serving_spec(args), rng=7, n_shards=2)
        with serve_in_thread(gateway) as handle:
            exit_code = main(
                ["loadgen", "--host", handle.host, "--port", str(handle.port),
                 "--users", "8000", "--batch-size", "2048", "--seed", "7", "--json"]
            )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "loadgen"
        assert payload["total_reports"] == 8000
        assert payload["result"]["shapes"] == [
            entry["shape"] for entry in simulate_payload["shapes"]
        ]
        assert payload["result"]["frequencies"] == [
            entry["estimated_count"] for entry in simulate_payload["shapes"]
        ]

    def test_loadgen_unreachable_gateway_fails_cleanly(self):
        with pytest.raises(SystemExit, match="load generation failed"):
            main(["loadgen", "--port", "1", "--users", "100"])

    def test_serve_resume_without_checkpoint_dir_rejected(self):
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["serve", "--resume"])

    def test_serve_rejects_unresolved_spec(self, tmp_path):
        from repro import ExperimentSpec

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(ExperimentSpec(mechanism="privshape").to_json())
        with pytest.raises(SystemExit, match="unresolved"):
            main(["serve", "--spec", str(spec_path)])
