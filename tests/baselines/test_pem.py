"""Tests for the PEM-style prefix-extending miner."""

import numpy as np
import pytest

from repro.baselines.pem import PrefixExtendingMiner
from repro.exceptions import EmptyDatasetError


def _population(n=3000, seed=0):
    """A population dominated by two sequences, plus uniform noise sequences."""
    rng = np.random.default_rng(seed)
    frequent_a = tuple("abcd")
    frequent_b = tuple("dcba")
    sequences = [frequent_a] * (n // 2) + [frequent_b] * (n // 3)
    while len(sequences) < n:
        length = 4
        symbols = []
        for _ in range(length):
            choices = [s for s in "abcd" if not symbols or s != symbols[-1]]
            symbols.append(choices[rng.integers(0, len(choices))])
        sequences.append(tuple(symbols))
    return sequences


class TestPrefixExtendingMiner:
    def test_finds_dominant_sequences_with_large_budget(self):
        miner = PrefixExtendingMiner(epsilon=6.0, alphabet="abcd", target_length=4, top_k=4)
        result = miner.mine(_population(), rng=0)
        assert tuple("abcd") in result

    def test_output_length_and_size(self):
        miner = PrefixExtendingMiner(epsilon=2.0, alphabet="abcd", target_length=3, top_k=5)
        result = miner.mine(_population(n=2000, seed=1), rng=1)
        assert len(result) <= 5
        assert all(len(shape) == 3 for shape in result)

    def test_no_consecutive_repeats_in_candidates(self):
        miner = PrefixExtendingMiner(epsilon=2.0, alphabet="abc", target_length=4, top_k=6)
        result = miner.mine(_population(n=1500, seed=2), rng=2)
        for shape in result:
            assert all(shape[i] != shape[i + 1] for i in range(len(shape) - 1))

    def test_multi_symbol_rounds(self):
        miner = PrefixExtendingMiner(
            epsilon=4.0, alphabet="abcd", target_length=4, top_k=4, symbols_per_round=2
        )
        result = miner.mine(_population(n=2000, seed=3), rng=3)
        assert all(len(shape) == 4 for shape in result)

    def test_empty_population_rejected(self):
        with pytest.raises(EmptyDatasetError):
            PrefixExtendingMiner(epsilon=1.0).mine([])
