"""Tests for the PatternLDP competitor mechanism."""

import numpy as np
import pytest

from repro.baselines.patternldp import PatternLDP


class TestConfiguration:
    def test_invalid_sample_fraction(self):
        with pytest.raises(ValueError):
            PatternLDP(epsilon=1.0, sample_fraction=0.0)
        with pytest.raises(ValueError):
            PatternLDP(epsilon=1.0, sample_fraction=1.5)

    def test_invalid_perturbation(self):
        with pytest.raises(ValueError):
            PatternLDP(epsilon=1.0, perturbation="gaussian")


class TestPerturbSeries:
    def test_result_fields(self):
        mechanism = PatternLDP(epsilon=2.0, sample_fraction=0.2)
        rng = np.random.default_rng(0)
        series = np.sin(np.linspace(0, 4 * np.pi, 80))
        result = mechanism.perturb_series(series, rng)
        assert result.reconstructed.size == 80
        assert result.indices.size == result.perturbed_values.size
        assert result.per_point_epsilon.size == result.indices.size

    def test_budget_allocation_sums_to_epsilon(self):
        mechanism = PatternLDP(epsilon=3.0, sample_fraction=0.15)
        rng = np.random.default_rng(1)
        result = mechanism.perturb_series(np.random.default_rng(2).normal(size=120), rng)
        assert result.per_point_epsilon.sum() == pytest.approx(3.0)
        assert np.all(result.per_point_epsilon > 0)

    def test_min_points_respected(self):
        mechanism = PatternLDP(epsilon=1.0, sample_fraction=0.01, min_points=10)
        result = mechanism.perturb_series(np.random.default_rng(3).normal(size=100), rng=0)
        assert result.indices.size >= 10

    def test_reconstruction_differs_from_original(self):
        """With a small budget the reconstruction must be visibly perturbed."""
        mechanism = PatternLDP(epsilon=0.5, sample_fraction=0.1)
        series = np.sin(np.linspace(0, 2 * np.pi, 100))
        reconstructed = mechanism.perturb_series(series, rng=4).reconstructed
        assert not np.allclose(reconstructed, series, atol=0.05)

    def test_high_budget_tracks_shape_better_than_low_budget(self):
        series = np.sin(np.linspace(0, 2 * np.pi, 150))
        rng_high = np.random.default_rng(5)
        rng_low = np.random.default_rng(5)
        errors_high, errors_low = [], []
        for _ in range(10):
            high = PatternLDP(epsilon=50.0, sample_fraction=0.2).perturb_series(series, rng_high)
            low = PatternLDP(epsilon=0.5, sample_fraction=0.2).perturb_series(series, rng_low)
            errors_high.append(np.mean((high.reconstructed - series) ** 2))
            errors_low.append(np.mean((low.reconstructed - series) ** 2))
        assert np.mean(errors_high) < np.mean(errors_low)

    def test_laplace_variant_runs(self):
        mechanism = PatternLDP(epsilon=1.0, perturbation="laplace")
        result = mechanism.perturb_series(np.random.default_rng(6).normal(size=60), rng=6)
        assert result.reconstructed.size == 60


class TestPerturbDataset:
    def test_one_output_per_series(self):
        mechanism = PatternLDP(epsilon=1.0)
        rng = np.random.default_rng(7)
        dataset = [rng.normal(size=80) for _ in range(5)]
        outputs = mechanism.perturb_dataset(dataset, rng=rng)
        assert len(outputs) == 5
        assert all(out.size == 80 for out in outputs)
