"""Tests for the PID importance scorer."""

import numpy as np
import pytest

from repro.baselines.pid import PIDImportanceScorer


class TestPIDImportanceScorer:
    def test_errors_zero_for_constant_series(self):
        scorer = PIDImportanceScorer()
        assert np.allclose(scorer.errors(np.full(20, 3.0)), 0.0)

    def test_errors_peak_at_trend_change(self):
        scorer = PIDImportanceScorer()
        series = np.concatenate([np.zeros(20), np.ones(20) * 5.0])
        errors = scorer.errors(series)
        assert int(np.argmax(errors)) == 20

    def test_scores_sum_to_one(self):
        scorer = PIDImportanceScorer()
        rng = np.random.default_rng(0)
        scores = scorer.scores(rng.normal(size=50))
        assert scores.sum() == pytest.approx(1.0)

    def test_scores_uniform_for_constant_series(self):
        scorer = PIDImportanceScorer()
        scores = scorer.scores(np.full(10, 1.0))
        assert np.allclose(scores, 0.1)

    def test_remarkable_points_include_endpoints(self):
        scorer = PIDImportanceScorer()
        rng = np.random.default_rng(1)
        series = rng.normal(size=60)
        points = scorer.remarkable_points(series, 10)
        assert 0 in points and 59 in points
        assert len(points) == 10

    def test_remarkable_points_sorted_unique(self):
        scorer = PIDImportanceScorer()
        points = scorer.remarkable_points(np.random.default_rng(2).normal(size=40), 8)
        assert np.all(np.diff(points) > 0)

    def test_remarkable_points_capture_step(self):
        scorer = PIDImportanceScorer()
        series = np.concatenate([np.zeros(30), np.full(30, 4.0)])
        points = scorer.remarkable_points(series, 5)
        assert any(28 <= p <= 32 for p in points)

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            PIDImportanceScorer().remarkable_points([1.0, 2.0, 3.0], 1)

    def test_n_points_clipped_to_series_length(self):
        points = PIDImportanceScorer().remarkable_points([1.0, 2.0, 3.0], 10)
        assert len(points) == 3
