"""Snapshot/restore and durable checkpoints.

The engine and aggregator snapshots must be *exact*: a protocol resumed from
``from_state(to_state())`` — at any point, including mid-round — must
finalize byte-identically to an uninterrupted run, because the snapshot
carries the master-generator state (future PRF keys), the integer count
state, and every piece of trie/accounting bookkeeping.
"""

import json

import numpy as np
import pytest

from repro.core.config import PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.exceptions import WireFormatError
from repro.server.state import CheckpointStore
from repro.service import EncodedPopulation, ShardedAggregator
from repro.service.client import ClientReporter
from repro.service.protocol import PrivShapeEngine
from repro.service.rounds import RoundAccumulator

SEQUENCES = [tuple("abcd")] * 500 + [tuple("dcba")] * 300 + [tuple("bca")] * 200
CONFIG = dict(epsilon=6.0, top_k=2, alphabet_size=4, metric="sed", length_high=6)


def _drive(engine, population, snapshot_at_round=None, mid_round=False):
    """Run every round; optionally snapshot+restore (JSON round-trip) mid-way."""
    user_ids = np.arange(len(population), dtype=np.int64)
    reporter = ClientReporter()
    round_number = 0
    while (spec := engine.open_round()) is not None:
        aggregator = ShardedAggregator(spec, n_shards=2)
        mask = engine.plan.participant_mask(spec, user_ids)
        if mask.any():
            participants = np.flatnonzero(mask)
            batch = reporter.make_reports(
                spec, population.take(participants), user_ids[participants]
            )
            half = len(batch) // 2
            aggregator.consume(batch.take(np.arange(half)))
            if mid_round and round_number == snapshot_at_round:
                state = json.loads(
                    json.dumps(
                        {"engine": engine.to_state(), "aggregator": aggregator.to_state()}
                    )
                )
                engine = PrivShapeEngine.from_state(state["engine"])
                aggregator = ShardedAggregator.from_state(state["aggregator"])
            aggregator.consume(batch.take(np.arange(half, len(batch))))
        engine.close_round(spec, aggregator.finalize_round())
        if not mid_round and round_number == snapshot_at_round:
            engine = PrivShapeEngine.from_state(
                json.loads(json.dumps(engine.to_state()))
            )
        round_number += 1
    return engine


class TestEngineSnapshot:
    def _offline(self):
        return PrivShape(PrivShapeConfig(**CONFIG)).extract(SEQUENCES, rng=5)

    @pytest.mark.parametrize("snapshot_at_round", [0, 1, 2, 4])
    def test_between_round_snapshot_resumes_byte_identically(self, snapshot_at_round):
        offline = self._offline()
        config = PrivShapeConfig(**CONFIG)
        population = EncodedPopulation.from_sequences(SEQUENCES, config.alphabet)
        engine = _drive(
            PrivShapeEngine(config, rng=5), population,
            snapshot_at_round=snapshot_at_round,
        )
        result = engine.finalize()
        assert result.shapes == offline.shapes
        assert result.frequencies == offline.frequencies
        assert result.estimated_length == offline.estimated_length
        assert result.subshape_candidates == offline.subshape_candidates
        assert result.accountant.per_population() == offline.accountant.per_population()

    @pytest.mark.parametrize("snapshot_at_round", [1, 3])
    def test_mid_round_snapshot_preserves_partial_counts(self, snapshot_at_round):
        offline = self._offline()
        config = PrivShapeConfig(**CONFIG)
        population = EncodedPopulation.from_sequences(SEQUENCES, config.alphabet)
        engine = _drive(
            PrivShapeEngine(config, rng=5), population,
            snapshot_at_round=snapshot_at_round, mid_round=True,
        )
        result = engine.finalize()
        assert result.shapes == offline.shapes
        assert result.frequencies == offline.frequencies

    def test_labeled_engine_snapshot(self):
        config = PrivShapeConfig(**CONFIG)
        labels = [0] * 500 + [1] * 300 + [0] * 200
        offline = PrivShape(config).extract_labeled(SEQUENCES, labels, rng=9)
        population = EncodedPopulation.from_sequences(
            SEQUENCES, config.alphabet, labels=labels
        )
        engine = PrivShapeEngine(config, rng=9, labeled=True, n_classes=2)
        user_ids = np.arange(len(population), dtype=np.int64)
        reporter = ClientReporter()
        while (spec := engine.open_round()) is not None:
            aggregator = ShardedAggregator(spec)
            mask = engine.plan.participant_mask(spec, user_ids)
            if mask.any():
                participants = np.flatnonzero(mask)
                aggregator.consume(
                    reporter.make_reports(
                        spec, population.take(participants), user_ids[participants]
                    )
                )
            engine.close_round(spec, aggregator.finalize_round())
            engine = PrivShapeEngine.from_state(
                json.loads(json.dumps(engine.to_state()))
            )
        result = engine.finalize_labeled()
        assert result.shapes_by_class == offline.shapes_by_class
        assert result.frequencies_by_class == offline.frequencies_by_class

    def test_snapshot_preserves_future_randomness(self):
        """The restored master generator must emit the original key stream."""
        engine = PrivShapeEngine(PrivShapeConfig(**CONFIG), rng=11)
        clone = PrivShapeEngine.from_state(engine.to_state())
        assert clone.generator.integers(0, 2**63, 8).tolist() == \
            engine.generator.integers(0, 2**63, 8).tolist()

    def test_snapshot_rejects_wrong_shard_count(self):
        engine = PrivShapeEngine(PrivShapeConfig(**CONFIG), rng=1)
        spec = engine.open_round()
        state = ShardedAggregator(spec, n_shards=3).to_state()
        state["n_shards"] = 2
        from repro.exceptions import ProtocolStateError

        with pytest.raises(ProtocolStateError):
            ShardedAggregator.from_state(state)


class TestAccumulatorState:
    def test_round_trip_is_exact(self):
        accumulator = RoundAccumulator(
            counts=np.arange(12, dtype=np.int64).reshape(3, 4), n_reports=9
        )
        restored = RoundAccumulator.from_state(
            json.loads(json.dumps(accumulator.to_state()))
        )
        assert restored.n_reports == 9
        assert restored.counts.dtype == np.int64
        assert np.array_equal(restored.counts, accumulator.counts)


class TestCheckpointStore:
    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        payload = {"engine": {"stage": "expand"}, "seen_batches": ["a", "b"]}
        path = store.save(payload)
        assert path.exists()
        assert not (path.parent / (store.FILENAME + ".tmp")).exists()
        loaded = store.load()
        assert loaded["engine"] == payload["engine"]
        assert loaded["seen_batches"] == ["a", "b"]

    def test_missing_checkpoint_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load() is None

    def test_corrupt_checkpoint_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"x": 1})
        store.path.write_text("{truncated", encoding="utf-8")
        with pytest.raises(WireFormatError):
            store.load()

    def test_version_mismatch_raises(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path.parent.mkdir(parents=True, exist_ok=True)
        store.path.write_text(json.dumps({"version": 99}), encoding="utf-8")
        with pytest.raises(WireFormatError):
            store.load()

    def test_overwrite_keeps_latest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save({"round": 1})
        store.save({"round": 2})
        assert store.load()["round"] == 2
