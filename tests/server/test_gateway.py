"""Socket-level gateway behaviour and the offline-equivalence guarantee.

The acceptance bar for the server subsystem: a run driven over the socket —
any batching, any sharding, including a kill-and-recover-from-checkpoint
mid-round — produces byte-identical shape estimates to the offline
``PrivShape.extract()`` path under the same PRF seed.
"""

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.exceptions import ServerError
from repro.server import (
    CollectionGateway,
    GatewayClient,
    batch_id_for,
    run_loadgen,
    serve_in_thread,
)
from repro.service import EncodedPopulation
from repro.service.client import ClientReporter
from repro.service.plan import CollectionPlan, RoundSpec

SEQUENCES = [tuple("abcd")] * 900 + [tuple("dcba")] * 600 + [tuple("bca")] * 300
CONFIG = dict(epsilon=6.0, top_k=2, alphabet_size=4, metric="sed", length_high=6)


@pytest.fixture(scope="module")
def offline_result():
    return PrivShape(PrivShapeConfig(**CONFIG)).extract(SEQUENCES, rng=5)


@pytest.fixture(scope="module")
def population():
    return EncodedPopulation.from_sequences(
        SEQUENCES, PrivShapeConfig(**CONFIG).alphabet
    )


def _assert_matches_offline(result_payload, offline):
    assert [tuple(s) for s in result_payload["shape_tuples"]] == offline.shapes
    assert result_payload["frequencies"] == offline.frequencies
    assert result_payload["estimated_length"] == offline.estimated_length
    assert result_payload["accounting"]["per_population"] == \
        offline.accountant.per_population()


def _collect_round_batches(population, plan_dict, round_dict, batch_size):
    """All (batch, batch_id) pairs a loadgen would send for one round."""
    plan = CollectionPlan.from_dict(plan_dict)
    spec = RoundSpec.from_dict(round_dict)
    reporter = ClientReporter()
    batches = []
    for user_ids, batch_population in population.iter_range(
        0, population.n_users, batch_size
    ):
        mask = plan.participant_mask(spec, user_ids)
        if not mask.any():
            continue
        participants = np.flatnonzero(mask)
        batches.append(
            (
                reporter.make_reports(
                    spec, batch_population.take(participants), user_ids[participants]
                ),
                batch_id_for(spec.index, user_ids[0], user_ids[-1] + 1),
            )
        )
    return batches


class TestSocketEquivalence:
    @pytest.mark.parametrize(
        "n_shards,batch_size,queue_depth", [(1, 97, 64), (3, 333, 64), (2, 5000, 1)]
    )
    def test_socket_run_matches_offline(
        self, offline_result, population, n_shards, batch_size, queue_depth
    ):
        """Any sharding/batching — including queue_depth=1 backpressure —
        yields byte-identical results over the socket."""
        gateway = CollectionGateway(
            PrivShapeConfig(**CONFIG), rng=5, n_shards=n_shards, queue_depth=queue_depth
        )
        with serve_in_thread(gateway) as handle:
            stats = run_loadgen(
                handle.host, handle.port, population, batch_size=batch_size
            )
        _assert_matches_offline(stats.result, offline_result)
        assert stats.total_reports == len(SEQUENCES)

    def test_duplicate_batches_are_not_double_counted(
        self, offline_result, population
    ):
        gateway = CollectionGateway(PrivShapeConfig(**CONFIG), rng=5, n_shards=2)
        with serve_in_thread(gateway) as handle:
            with handle.client() as client:
                while not (current := client.round())["done"]:
                    batches = _collect_round_batches(
                        population, current["plan"], current["round"], 250
                    )
                    for batch, batch_id in batches:
                        first = client.report(batch, batch_id)
                        replay = client.report(batch, batch_id)
                        assert first["accepted"] is True
                        assert replay["accepted"] is False
                    client.close_round(current["round"]["index"])
                result = client.result()
        _assert_matches_offline(result, offline_result)

    def test_kill_and_recover_from_mid_round_checkpoint(
        self, offline_result, population, tmp_path
    ):
        """The acceptance criterion: crash mid-round, restore from the
        checkpoint, replay the round, finish — byte-identical to offline."""
        checkpoint_dir = str(tmp_path / "ckpt")
        gateway = CollectionGateway(
            PrivShapeConfig(**CONFIG), rng=5, n_shards=3, checkpoint_dir=checkpoint_dir
        )
        handle = serve_in_thread(gateway)
        client = GatewayClient(handle.host, handle.port)
        # Advance into round 2, then send only half of that round's batches.
        for _ in range(2):
            current = client.round()
            for batch, batch_id in _collect_round_batches(
                population, current["plan"], current["round"], 200
            ):
                client.report(batch, batch_id)
            client.close_round(current["round"]["index"])
        current = client.round()
        batches = _collect_round_batches(
            population, current["plan"], current["round"], 200
        )
        half = len(batches) // 2
        assert half >= 1
        for batch, batch_id in batches[:half]:
            client.report(batch, batch_id)
        client.checkpoint()
        client.close()
        handle.stop()  # crash: everything since the checkpoint is gone

        recovered = CollectionGateway.from_checkpoint(checkpoint_dir)
        assert recovered.engine.current_round.index == current["round"]["index"]
        with serve_in_thread(recovered) as handle:
            with handle.client() as client:
                duplicates = 0
                for batch, batch_id in batches:  # replay the full round
                    if not client.report(batch, batch_id)["accepted"]:
                        duplicates += 1
                assert duplicates == half
                client.close_round(current["round"]["index"])
            # Finish the remaining rounds through the plain loadgen path.
            stats = run_loadgen(handle.host, handle.port, population, batch_size=411)
        _assert_matches_offline(stats.result, offline_result)

    def test_server_initiated_checkpoints_recover(
        self, offline_result, population, tmp_path
    ):
        """checkpoint_every=N writes mid-round snapshots without being asked;
        recovery from the last one is exact."""
        checkpoint_dir = str(tmp_path / "auto")
        gateway = CollectionGateway(
            PrivShapeConfig(**CONFIG),
            rng=5,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=2,
        )
        handle = serve_in_thread(gateway)
        with handle.client() as client:
            current = client.round()
            batches = _collect_round_batches(
                population, current["plan"], current["round"], 150
            )
            for batch, batch_id in batches[:5]:
                client.report(batch, batch_id)
            status = client.status()
        assert status["checkpoints_written"] >= 2
        handle.stop()

        recovered = CollectionGateway.from_checkpoint(checkpoint_dir)
        with serve_in_thread(recovered) as handle:
            with handle.client() as client:
                for batch, batch_id in batches:
                    client.report(batch, batch_id)
                client.close_round(current["round"]["index"])
            stats = run_loadgen(handle.host, handle.port, population, batch_size=500)
        _assert_matches_offline(stats.result, offline_result)


class TestProtocolErrors:
    @pytest.fixture()
    def served(self):
        gateway = CollectionGateway(PrivShapeConfig(**CONFIG), rng=5)
        with serve_in_thread(gateway) as handle:
            with handle.client() as client:
                yield handle, client

    def test_result_before_done_is_rejected(self, served):
        _, client = served
        with pytest.raises(ServerError, match="stage"):
            client.result()

    def test_wrong_round_batch_rejected(self, served, population):
        _, client = served
        current = client.round()
        plan, round_dict = current["plan"], dict(current["round"])
        batch, batch_id = _collect_round_batches(population, plan, round_dict, 300)[0]
        wrong = type(batch)(
            round_index=batch.round_index + 5,
            kind=batch.kind,
            user_ids=batch.user_ids,
            payload=batch.payload,
        )
        with pytest.raises(ServerError, match="does not"):
            client.report(wrong, batch_id)

    def test_close_wrong_round_rejected(self, served):
        _, client = served
        with pytest.raises(ServerError, match="close_round"):
            client.close_round(41)

    def test_unknown_op_rejected(self, served):
        _, client = served
        with pytest.raises(ServerError, match="unknown op"):
            client.request({"op": "reboot"})

    def test_malformed_report_rejected_and_connection_survives(self, served):
        _, client = served
        response = client.request(
            {"op": "report", "batch_id": "x", "data": "!!notbase64!!"}, check=False
        )
        assert response["ok"] is False
        assert response["error_type"] == "WireFormatError"
        assert client.round()["done"] is False  # same connection still works

    def test_checkpoint_without_directory_rejected(self, served):
        _, client = served
        with pytest.raises(ServerError, match="checkpoint"):
            client.checkpoint()

    def test_recovery_requires_a_checkpoint(self, tmp_path):
        with pytest.raises(ServerError, match="no checkpoint"):
            CollectionGateway.from_checkpoint(str(tmp_path / "empty"))


class TestHttpEndpoints:
    def test_status_result_and_health(self, offline_result, population):
        gateway = CollectionGateway(PrivShapeConfig(**CONFIG), rng=5)
        with serve_in_thread(gateway) as handle:
            base = f"http://{handle.host}:{handle.port}"
            status = json.load(urllib.request.urlopen(f"{base}/status", timeout=30))
            assert status["ok"] is True
            assert status["status"]["stage"] == "length"
            # Operational metrics: per-shard queue depth, checkpoint lag, and
            # cumulative throughput ride along with the protocol state.
            assert status["status"]["queue_depths"] == [0]
            assert status["status"]["checkpoint_lag_batches"] == 0
            assert status["status"]["reports_per_second"] == 0.0
            assert json.load(urllib.request.urlopen(f"{base}/healthz", timeout=30))["ok"]

            with pytest.raises(urllib.error.HTTPError) as not_done:
                urllib.request.urlopen(f"{base}/result", timeout=30)
            assert not_done.value.code == 409
            with pytest.raises(urllib.error.HTTPError) as missing:
                urllib.request.urlopen(f"{base}/nope", timeout=30)
            assert missing.value.code == 404

            run_loadgen(handle.host, handle.port, population, batch_size=700)
            result = json.load(urllib.request.urlopen(f"{base}/result", timeout=30))
            status = json.load(urllib.request.urlopen(f"{base}/status", timeout=30))
        _assert_matches_offline(result["result"], offline_result)
        assert status["status"]["done"] is True
        assert status["status"]["total_reports"] == len(SEQUENCES)
        assert status["status"]["reports_per_second"] > 0
