"""Atomic port-file publication: the boot handshake of every served process."""

import os

import pytest

from repro.exceptions import ServerError
from repro.server import publish_port, read_port, wait_for_port_file


def test_publish_then_read_round_trips(tmp_path):
    path = tmp_path / "svc.port"
    publish_port(path, 54321)
    assert read_port(path) == 54321


def test_read_missing_file_is_none(tmp_path):
    assert read_port(tmp_path / "nope.port") is None


def test_publish_creates_parent_directories(tmp_path):
    path = tmp_path / "deep" / "nested" / "svc.port"
    publish_port(path, 1234)
    assert read_port(path) == 1234


def test_publish_overwrites_atomically(tmp_path):
    """Re-publishing replaces the old port and never leaves temp litter."""
    path = tmp_path / "svc.port"
    publish_port(path, 1111)
    publish_port(path, 2222)
    assert read_port(path) == 2222
    assert os.listdir(tmp_path) == ["svc.port"]


def test_garbage_content_is_an_error(tmp_path):
    path = tmp_path / "svc.port"
    path.write_text("not-a-port\n", encoding="utf-8")
    with pytest.raises(ServerError, match="not a port number"):
        read_port(path)


def test_wait_returns_published_port(tmp_path):
    path = tmp_path / "svc.port"
    publish_port(path, 4040)
    assert wait_for_port_file(path, timeout=1.0) == 4040


def test_wait_times_out_without_publisher(tmp_path):
    with pytest.raises(ServerError, match="no port was published"):
        wait_for_port_file(tmp_path / "never.port", timeout=0.2, poll_interval=0.01)
