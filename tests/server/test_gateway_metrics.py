"""Gateway observability surface: /metrics exposition and HTTP error paths."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.core.config import PrivShapeConfig
from repro.obs.promtext import CONTENT_TYPE, parse_prometheus_text
from repro.server import CollectionGateway, run_loadgen, serve_in_thread
from repro.service import EncodedPopulation

SEQUENCES = [tuple("abcd")] * 600 + [tuple("dcba")] * 400 + [tuple("bca")] * 200
CONFIG = dict(epsilon=6.0, top_k=2, alphabet_size=4, metric="sed", length_high=6)


@pytest.fixture(scope="module")
def population():
    return EncodedPopulation.from_sequences(
        SEQUENCES, PrivShapeConfig(**CONFIG).alphabet
    )


def _http_get(handle, path):
    return urllib.request.urlopen(
        f"http://{handle.host}:{handle.port}{path}", timeout=30
    )


class TestMetricsEndpoint:
    def test_scrape_is_valid_prometheus_text(self):
        gateway = CollectionGateway(PrivShapeConfig(**CONFIG), rng=5)
        with serve_in_thread(gateway) as handle:
            response = _http_get(handle, "/metrics")
            assert response.status == 200
            assert response.headers["Content-Type"] == CONTENT_TYPE
            families = parse_prometheus_text(response.read().decode())
        assert families["privshape_reports_total"].sample_values() == [0]
        assert families["privshape_round_index"].kind == "gauge"
        assert families["privshape_batch_reports"].kind == "histogram"
        stages = {
            sample.labels["stage"]: sample.value
            for sample in families["privshape_stage"].samples
        }
        assert stages["length"] == 1
        assert sum(stages.values()) == 1

    def test_counters_track_a_full_run(self, population):
        gateway = CollectionGateway(PrivShapeConfig(**CONFIG), rng=5)
        with serve_in_thread(gateway) as handle:
            run_loadgen(handle.host, handle.port, population, batch_size=500)
            families = parse_prometheus_text(
                _http_get(handle, "/metrics").read().decode()
            )
        assert families["privshape_reports_total"].sample_values() == [
            len(SEQUENCES)
        ]
        closed = sum(
            sample.value
            for sample in families["privshape_rounds_closed_total"].samples
        )
        assert closed > 0
        stages = {
            sample.labels["stage"]: sample.value
            for sample in families["privshape_stage"].samples
        }
        assert stages["done"] == 1
        # Every accepted batch landed one size observation.
        assert families["privshape_batch_reports"].sample_values(
            "privshape_batch_reports_count"
        )[0] > 0


class TestHttpErrorPaths:
    def test_unknown_path_is_json_404(self):
        gateway = CollectionGateway(PrivShapeConfig(**CONFIG), rng=5)
        with serve_in_thread(gateway) as handle:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _http_get(handle, "/nope")
            assert excinfo.value.code == 404
            assert excinfo.value.headers["Content-Type"] == "application/json"
            body = json.loads(excinfo.value.read().decode())
            assert body["ok"] is False
            assert "error" in body

    def test_malformed_request_line_is_400(self):
        gateway = CollectionGateway(PrivShapeConfig(**CONFIG), rng=5)
        with serve_in_thread(gateway) as handle:
            with socket.create_connection(
                (handle.host, handle.port), timeout=30
            ) as conn:
                # A GET with no path token at all.
                conn.sendall(b"GET \r\n\r\n")
                raw = b""
                while b"\r\n\r\n" not in raw:
                    chunk = conn.recv(4096)
                    if not chunk:
                        break
                    raw += chunk
                raw += conn.recv(4096)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.split(b"\r\n")[0] == b"HTTP/1.1 400 Bad Request"
        payload = json.loads(body.decode())
        assert payload["ok"] is False
        assert "malformed" in payload["error"]

    def test_healthz_still_speaks_json(self):
        gateway = CollectionGateway(PrivShapeConfig(**CONFIG), rng=5)
        with serve_in_thread(gateway) as handle:
            response = _http_get(handle, "/healthz")
            assert response.headers["Content-Type"] == "application/json"
            assert json.loads(response.read().decode())["ok"] is True
