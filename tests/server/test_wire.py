"""Hostile-input hardening of the wire formats.

Once batches arrive over a socket, ``ReportBatch.from_bytes`` is an attack
surface: every malformed frame must raise a clear
:class:`~repro.exceptions.WireFormatError` (a :class:`ReproError`), never a
raw ``KeyError`` / ``TypeError`` / numpy internal error.  The property-style
tests below feed truncated, mutated, duplicated, and wrong-domain payloads.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DomainError, ReproError, WireFormatError
from repro.server.wire import (
    batch_from_wire,
    batch_to_wire,
    check_batch_id,
    decode_message,
    encode_message,
)
from repro.service.plan import (
    GROUP_EXPAND,
    GROUP_LENGTH,
    GROUP_REFINE,
    GROUP_SUBSHAPE,
    KIND_EXPAND,
    KIND_LENGTH,
    KIND_REFINE,
    KIND_SUBSHAPE,
    RoundSpec,
)
from repro.service.reports import ReportBatch


def _length_batch(n: int = 40) -> ReportBatch:
    return ReportBatch(
        round_index=0,
        kind="length",
        user_ids=np.arange(n, dtype=np.int64),
        payload=np.arange(n, dtype=np.int32) % 7,
    )


def _refine_batch(n: int = 32, cells: int = 13) -> ReportBatch:
    rng = np.random.default_rng(0)
    return ReportBatch(
        round_index=3,
        kind="refine",
        user_ids=np.arange(n, dtype=np.int64),
        payload=(rng.random((n, cells)) < 0.3).astype(np.uint8),
    )


def _spec(kind: str, **overrides) -> RoundSpec:
    defaults = dict(
        index=0,
        key=12345,
        epsilon=2.0,
        metric="sed",
        alphabet=("a", "b", "c", "d"),
    )
    defaults.update(overrides)
    return RoundSpec(kind=kind, **defaults)


class TestFrameHardening:
    @pytest.mark.parametrize("make", [_length_batch, _refine_batch])
    def test_every_truncation_raises_wire_format_error(self, make):
        """No prefix of a valid frame may crash or silently half-parse."""
        wire = make().to_bytes()
        step = max(len(wire) // 97, 1)  # cover all regions without O(n^2) cost
        for cut in range(0, len(wire), step):
            with pytest.raises(WireFormatError):
                ReportBatch.from_bytes(wire[:cut])

    def test_trailing_garbage_rejected(self):
        wire = _length_batch().to_bytes()
        with pytest.raises(WireFormatError):
            ReportBatch.from_bytes(wire + b"\x00")

    @settings(max_examples=60, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_random_bytes_never_leak_internal_errors(self, blob):
        try:
            ReportBatch.from_bytes(blob)
        except WireFormatError:
            pass  # the only acceptable failure mode

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=190), st.integers(min_value=0, max_value=255))
    def test_single_byte_corruption_is_contained(self, position, value):
        """Flipping any byte either round-trips harmlessly or raises cleanly."""
        wire = bytearray(_length_batch().to_bytes())
        position %= len(wire)
        wire[position] = value
        try:
            restored = ReportBatch.from_bytes(bytes(wire))
        except WireFormatError:
            return
        assert restored.kind in ("length", "subshape", "expand", "refine", "refine_labeled")
        assert len(restored) == restored.payload.shape[0]

    def _mutated(self, **header_overrides) -> bytes:
        """A valid frame with its JSON header fields overwritten."""
        wire = _length_batch().to_bytes()
        header_size = int.from_bytes(wire[:4], "big")
        header = json.loads(wire[4 : 4 + header_size])
        header.update(header_overrides)
        new_header = json.dumps(header, separators=(",", ":")).encode()
        return len(new_header).to_bytes(4, "big") + new_header + wire[4 + header_size :]

    @pytest.mark.parametrize(
        "overrides",
        [
            {"kind": "not-a-round"},
            {"kind": 7},
            {"round_index": -1},
            {"round_index": "zero"},
            {"round_index": True},
            {"n": -3},
            {"n": 2**40},
            {"n": "40"},
            {"payload_dtype": "<f8"},
            {"payload_dtype": "O"},
            {"payload_dtype": ["<i4"]},
            {"payload_shape": [40, 1, 1]},
            {"payload_shape": [39]},
            {"payload_shape": [-40]},
            {"payload_shape": "40"},
            {"bit_columns": 5},
            {"bit_columns": "8"},
        ],
    )
    def test_header_type_confusion_rejected(self, overrides):
        with pytest.raises(WireFormatError):
            ReportBatch.from_bytes(self._mutated(**overrides))

    def test_missing_header_fields_rejected(self):
        wire = _length_batch().to_bytes()
        header_size = int.from_bytes(wire[:4], "big")
        header = json.loads(wire[4 : 4 + header_size])
        for field in list(header):
            partial = {k: v for k, v in header.items() if k != field}
            encoded = json.dumps(partial, separators=(",", ":")).encode()
            frame = len(encoded).to_bytes(4, "big") + encoded + wire[4 + header_size :]
            with pytest.raises(WireFormatError):
                ReportBatch.from_bytes(frame)

    def test_subshape_column_count_enforced(self):
        """A 1-column 'subshape' frame must die in from_bytes, not later as an
        IndexError inside domain validation."""
        # The base frame has 40 int32 values (160 payload bytes); declaring
        # them as a (40, 1) subshape matrix keeps every structural check
        # (n, frame length) satisfied — only the column contract can catch it.
        frame = self._mutated(kind="subshape", payload_shape=[40, 1])
        with pytest.raises(WireFormatError):
            ReportBatch.from_bytes(frame)
        # And validate_against itself rejects malformed local batches cleanly.
        spec = _spec(KIND_SUBSHAPE, group=GROUP_SUBSHAPE, est_length=4)
        narrow = ReportBatch(
            round_index=0, kind="subshape", user_ids=np.arange(2),
            payload=np.zeros((2, 1), dtype=np.int32),
        )
        with pytest.raises(DomainError):
            narrow.validate_against(spec)

    def test_overflowing_shape_product_rejected(self):
        """payload_shape [40, 2**61 + 1] wraps to a count of exactly 40 under
        int64 arithmetic (40·(2**61+1) ≡ 40 mod 2**64), which would sneak past
        a numpy-based length equation; exact integer accounting rejects it."""
        frame = self._mutated(payload_shape=[40, 2**61 + 1])
        with pytest.raises(WireFormatError):
            ReportBatch.from_bytes(frame)

    def test_header_must_be_json_object(self):
        body = json.dumps([1, 2, 3]).encode()
        with pytest.raises(WireFormatError):
            ReportBatch.from_bytes(len(body).to_bytes(4, "big") + body)

    def test_implausible_header_size_rejected(self):
        with pytest.raises(WireFormatError):
            ReportBatch.from_bytes((1 << 20).to_bytes(4, "big") + b"{}" * 10)

    def test_refine_bit_packing_round_trips_through_base64(self):
        batch = _refine_batch()
        restored = batch_from_wire(batch_to_wire(batch))
        assert np.array_equal(restored.payload, batch.payload)
        assert np.array_equal(restored.user_ids, batch.user_ids)


class TestValidateAgainst:
    def test_length_domain(self):
        spec = _spec(KIND_LENGTH, group=GROUP_LENGTH, length_low=1, length_high=7)
        good = _length_batch()  # values 0..6 within the 7-value clipped domain
        good.validate_against(spec)
        bad = ReportBatch(
            round_index=0,
            kind="length",
            user_ids=np.arange(4),
            payload=np.array([0, 1, 7, 2], dtype=np.int32),
        )
        with pytest.raises(DomainError):
            bad.validate_against(spec)

    def test_subshape_domain(self):
        spec = _spec(KIND_SUBSHAPE, group=GROUP_SUBSHAPE, est_length=4)
        good = ReportBatch(
            round_index=0,
            kind="subshape",
            user_ids=np.arange(3),
            payload=np.array([[1, 0], [3, 11], [2, 5]], dtype=np.int32),
        )
        good.validate_against(spec)
        for payload in ([[0, 0]], [[4, 0]], [[1, 12]], [[1, -1]]):
            bad = ReportBatch(
                round_index=0,
                kind="subshape",
                user_ids=np.arange(1),
                payload=np.array(payload, dtype=np.int32),
            )
            with pytest.raises(DomainError):
                bad.validate_against(spec)

    def test_expand_domain(self):
        spec = _spec(
            KIND_EXPAND,
            group=GROUP_EXPAND,
            level=0,
            est_length=2,
            candidates=(("a",), ("b",), ("c",)),
        )
        ReportBatch(
            round_index=0, kind="expand", user_ids=np.arange(3),
            payload=np.array([0, 1, 2], dtype=np.int32),
        ).validate_against(spec)
        with pytest.raises(DomainError):
            ReportBatch(
                round_index=0, kind="expand", user_ids=np.arange(1),
                payload=np.array([3], dtype=np.int32),
            ).validate_against(spec)

    def test_refine_cells_and_bits(self):
        spec = _spec(KIND_REFINE, group=GROUP_REFINE, candidates=(("a",), ("b",)))
        ReportBatch(
            round_index=0, kind="refine", user_ids=np.arange(2),
            payload=np.array([[0, 1], [1, 1]], dtype=np.uint8),
        ).validate_against(spec)
        with pytest.raises(DomainError):  # wrong cell count
            ReportBatch(
                round_index=0, kind="refine", user_ids=np.arange(2),
                payload=np.zeros((2, 3), dtype=np.uint8),
            ).validate_against(spec)
        with pytest.raises(DomainError):  # non-bit values corrupt the counts
            ReportBatch(
                round_index=0, kind="refine", user_ids=np.arange(1),
                payload=np.array([[7, 0]], dtype=np.uint8),
            ).validate_against(spec)

    def test_duplicated_and_negative_user_ids_rejected(self):
        spec = _spec(KIND_LENGTH, group=GROUP_LENGTH, length_low=1, length_high=6)
        with pytest.raises(DomainError):
            ReportBatch(
                round_index=0, kind="length",
                user_ids=np.array([5, 5], dtype=np.int64),
                payload=np.zeros(2, dtype=np.int32),
            ).validate_against(spec)
        with pytest.raises(DomainError):
            ReportBatch(
                round_index=0, kind="length",
                user_ids=np.array([-1], dtype=np.int64),
                payload=np.zeros(1, dtype=np.int32),
            ).validate_against(spec)

    def test_empty_batch_is_valid(self):
        spec = _spec(KIND_LENGTH, group=GROUP_LENGTH, length_low=1, length_high=6)
        ReportBatch(
            round_index=0, kind="length",
            user_ids=np.empty(0, dtype=np.int64),
            payload=np.empty(0, dtype=np.int32),
        ).validate_against(spec)


class TestMessageFraming:
    def test_message_round_trip(self):
        payload = {"op": "report", "batch_id": "r0:u0:100", "data": "QUJD"}
        assert decode_message(encode_message(payload).strip()) == payload

    @pytest.mark.parametrize("line", [b"", b"[1,2]", b'"text"', b"\xff\xfe", b"{bad json"])
    def test_malformed_messages_rejected(self, line):
        with pytest.raises(WireFormatError):
            decode_message(line)

    @pytest.mark.parametrize("data", [None, 7, "not base64!!", "QQ="])
    def test_malformed_report_data_rejected(self, data):
        with pytest.raises(ReproError):
            batch_from_wire(data)

    @pytest.mark.parametrize("batch_id", [None, "", 12, "x" * 1000])
    def test_bad_batch_ids_rejected(self, batch_id):
        with pytest.raises(WireFormatError):
            check_batch_id(batch_id)
