"""Load-generation correctness: slicing, determinism, multi-process fan-out."""

import numpy as np
import pytest

from repro.core.config import PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.server import CollectionGateway, batch_id_for, run_loadgen, serve_in_thread
from repro.service.population import worker_slices
from repro.service import EncodedPopulation, SyntheticShapeStream, default_templates

ALPHABET = ("a", "b", "c", "d")


def _stream(n_users: int = 3000) -> SyntheticShapeStream:
    templates = default_templates(ALPHABET, n_templates=4, length=5, rng=0)
    return SyntheticShapeStream(
        n_users=n_users,
        alphabet=ALPHABET,
        templates=tuple(templates),
        weights=tuple(1.0 / (rank + 1) for rank in range(len(templates))),
        seed=0,
        length_jitter=0.2,
    )


def _materialize(population) -> list:
    """The stream's users as explicit sequences (for the offline reference)."""
    sequences = []
    for _, batch in population.iter_batches(512):
        sequences.extend(batch.decode_row(row) for row in batch.codes)
    return sequences


class TestRangeIteration:
    @pytest.mark.parametrize("make", [_stream, lambda: EncodedPopulation.from_sequences(
        _materialize(_stream()), ALPHABET)])
    def test_slices_union_to_full_stream(self, make):
        population = make()
        full = list(population.iter_batches(256))
        cuts = [0, 700, 701, 2050, population.n_users]
        sliced = []
        for start, stop in zip(cuts, cuts[1:]):
            sliced.extend(population.iter_range(start, stop, 256))
        assert np.array_equal(
            np.concatenate([ids for ids, _ in sliced]),
            np.concatenate([ids for ids, _ in full]),
        )
        assert np.array_equal(
            np.concatenate([batch.lengths for _, batch in sliced]),
            np.concatenate([batch.lengths for _, batch in full]),
        )
        sliced_codes = [batch.padded_codes(6) for _, batch in sliced]
        full_codes = [batch.padded_codes(6) for _, batch in full]
        assert np.array_equal(np.vstack(sliced_codes), np.vstack(full_codes))

    def test_worker_slices_partition_the_population(self):
        for n_users, workers in [(10, 3), (1000, 4), (3, 8)]:
            slices = worker_slices(n_users, workers)
            covered = [i for start, stop in slices for i in range(start, stop)]
            assert covered == list(range(n_users))

    def test_batch_ids_are_deterministic(self):
        assert batch_id_for(3, 100, 200) == batch_id_for(3, 100, 200)
        assert batch_id_for(3, 100, 200) != batch_id_for(4, 100, 200)
        assert batch_id_for(3, 100, 200) != batch_id_for(3, 0, 200)


class TestLoadgenEquivalence:
    @pytest.fixture(scope="class")
    def offline_result(self):
        config = PrivShapeConfig(
            epsilon=6.0, top_k=2, alphabet_size=4, metric="sed",
            length_low=1, length_high=5,
        )
        return PrivShape(config).extract(_materialize(_stream()), rng=3)

    def _gateway(self, **kwargs):
        config = PrivShapeConfig(
            epsilon=6.0, top_k=2, alphabet_size=4, metric="sed",
            length_low=1, length_high=5,
        )
        return CollectionGateway(config, rng=3, **kwargs)

    def test_inline_loadgen_matches_offline(self, offline_result):
        with serve_in_thread(self._gateway(n_shards=2)) as handle:
            stats = run_loadgen(handle.host, handle.port, _stream(), batch_size=277)
        assert [tuple(s) for s in stats.result["shape_tuples"]] == offline_result.shapes
        assert stats.result["frequencies"] == offline_result.frequencies
        assert stats.total_reports == 3000
        assert [r.kind for r in stats.rounds][0] == "length"
        assert stats.server_status["done"] is True

    def test_multiprocess_loadgen_matches_offline(self, offline_result):
        """Two OS processes stream disjoint user slices; the result must be
        identical — reports are PRF functions of (round, user id) alone."""
        with serve_in_thread(self._gateway(n_shards=2)) as handle:
            stats = run_loadgen(
                handle.host, handle.port, _stream(),
                batch_size=512, workers=2, mp_context="fork",
            )
        assert [tuple(s) for s in stats.result["shape_tuples"]] == offline_result.shapes
        assert stats.result["frequencies"] == offline_result.frequencies
        assert stats.total_reports == 3000
        assert stats.workers == 2
