"""Tests for DTW distance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.distance.dtw import dtw_distance, dtw_path


def _series(min_size=1, max_size=12):
    return arrays(
        dtype=float,
        shape=st.integers(min_value=min_size, max_value=max_size),
        elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
    )


class TestDTWDistance:
    def test_identical_series_zero(self):
        series = [1.0, 2.0, 3.0, 2.0]
        assert dtw_distance(series, series) == pytest.approx(0.0)

    def test_symmetry(self):
        a, b = [1.0, 2.0, 3.0], [2.0, 2.5, 3.5, 1.0]
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_time_warping_invariance(self):
        """Stretching a series in time should not change its DTW distance."""
        a = [0.0, 1.0, 2.0, 1.0, 0.0]
        stretched = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 1.0, 1.0, 0.0, 0.0]
        assert dtw_distance(a, stretched) == pytest.approx(0.0)

    def test_known_value(self):
        # Best alignment of [0,0,1] and [0,1,1]: cost 0.
        assert dtw_distance([0.0, 0.0, 1.0], [0.0, 1.0, 1.0]) == pytest.approx(0.0)

    def test_nonzero_example(self):
        assert dtw_distance([0.0, 0.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_window_constraint_matches_unconstrained_for_wide_window(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=10), rng.normal(size=10)
        assert dtw_distance(a, b, window=10) == pytest.approx(dtw_distance(a, b))

    def test_narrow_window_never_smaller(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=12), rng.normal(size=12)
        assert dtw_distance(a, b, window=1) >= dtw_distance(a, b) - 1e-9

    def test_negative_window_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance([1.0, 2.0], [1.0, 2.0], window=-1)

    def test_squared_variant(self):
        value = dtw_distance([0.0, 0.0], [2.0, 2.0], squared=True)
        assert value == pytest.approx(np.sqrt(8.0))

    def test_different_lengths_supported(self):
        assert dtw_distance([1.0], [1.0, 1.0, 1.0]) == pytest.approx(0.0)

    @given(_series(), _series())
    @settings(max_examples=40, deadline=None)
    def test_property_non_negative_and_symmetric(self, a, b):
        d_ab = dtw_distance(a, b)
        assert d_ab >= 0
        assert d_ab == pytest.approx(dtw_distance(b, a), rel=1e-9, abs=1e-9)

    @given(_series())
    @settings(max_examples=30, deadline=None)
    def test_property_identity(self, a):
        assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-9)


class TestDTWPath:
    def test_path_endpoints(self):
        path = dtw_path([1.0, 2.0, 3.0], [1.0, 3.0])
        assert path[0] == (0, 0)
        assert path[-1] == (2, 1)

    def test_path_is_monotone(self):
        rng = np.random.default_rng(2)
        path = dtw_path(rng.normal(size=8), rng.normal(size=6))
        for (i0, j0), (i1, j1) in zip(path, path[1:]):
            assert 0 <= i1 - i0 <= 1
            assert 0 <= j1 - j0 <= 1
