"""Tests for the metric registry and shape-level distances."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.registry import (
    available_metrics,
    get_metric,
    shape_distance,
    similarity_score,
)

_shapes = st.lists(st.sampled_from("abcd"), min_size=1, max_size=8).map(tuple)


class TestRegistry:
    def test_available_metrics_contains_paper_metrics(self):
        metrics = available_metrics()
        assert {"dtw", "sed", "euclidean"} <= set(metrics)

    def test_get_metric_case_insensitive(self):
        assert get_metric("DTW") is get_metric("dtw")

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError):
            get_metric("cosine")
        with pytest.raises(KeyError):
            shape_distance(("a",), ("b",), metric="cosine")


class TestShapeDistance:
    def test_sed_counts_symbol_edits(self):
        assert shape_distance(("a", "b", "c"), ("a", "c", "c"), metric="sed") == 1.0

    def test_dtw_on_identical_shapes(self):
        assert shape_distance(("a", "c", "b"), ("a", "c", "b"), metric="dtw") == pytest.approx(0.0)

    def test_dtw_orders_by_similarity(self):
        close = shape_distance(("a", "b", "c"), ("a", "b", "d"), metric="dtw", alphabet_size=4)
        far = shape_distance(("a", "b", "c"), ("d", "c", "a"), metric="dtw", alphabet_size=4)
        assert close < far

    def test_euclidean_shape_metric(self):
        same = shape_distance(("a", "d"), ("a", "d"), metric="euclidean", alphabet_size=4)
        different = shape_distance(("a", "d"), ("d", "a"), metric="euclidean", alphabet_size=4)
        assert same == pytest.approx(0.0)
        assert different > 0

    def test_empty_shapes(self):
        assert shape_distance((), (), metric="dtw") == 0.0
        assert shape_distance((), ("a", "b"), metric="dtw") == 2.0
        assert shape_distance(("a",), (), metric="sed") == 1.0

    @given(_shapes, _shapes)
    @settings(max_examples=40)
    def test_property_symmetry_non_negative(self, a, b):
        for metric in ("dtw", "sed", "euclidean"):
            d = shape_distance(a, b, metric=metric, alphabet_size=4)
            assert d >= 0
            assert d == pytest.approx(shape_distance(b, a, metric=metric, alphabet_size=4))


class TestSimilarityScore:
    def test_identical_scores_one(self):
        assert similarity_score(("a", "b"), ("a", "b")) == pytest.approx(1.0)

    def test_bounded(self):
        score = similarity_score(("a", "b", "c"), ("d", "c", "a"), alphabet_size=4)
        assert 0.0 < score <= 1.0

    def test_monotone_in_distance(self):
        near = similarity_score(("a", "b", "c"), ("a", "b", "d"), alphabet_size=4)
        far = similarity_score(("a", "b", "c"), ("d", "c", "a"), alphabet_size=4)
        assert near > far

    def test_empty_pair(self):
        assert similarity_score((), ()) == 1.0

    @given(_shapes, _shapes)
    @settings(max_examples=40)
    def test_property_in_unit_interval(self, a, b):
        score = similarity_score(a, b, metric="sed", alphabet_size=4)
        assert 0.0 < score <= 1.0
