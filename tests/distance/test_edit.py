"""Tests for the string edit distance."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distance.edit import edit_distance

_symbols = st.lists(st.sampled_from("abcd"), max_size=12)


class TestEditDistance:
    def test_identical(self):
        assert edit_distance("abca", "abca") == 0

    def test_single_substitution(self):
        assert edit_distance("abc", "abd") == 1

    def test_insertion_and_deletion(self):
        assert edit_distance("abc", "abcd") == 1
        assert edit_distance("abcd", "abc") == 1

    def test_empty_cases(self):
        assert edit_distance("", "abc") == 3
        assert edit_distance("abc", "") == 3
        assert edit_distance("", "") == 0

    def test_classic_example(self):
        assert edit_distance("kitten", "sitting") == 3

    def test_works_on_tuples(self):
        assert edit_distance(("a", "b"), ("a", "c")) == 1

    @given(_symbols, _symbols)
    @settings(max_examples=60)
    def test_property_symmetry_and_bounds(self, a, b):
        d = edit_distance(a, b)
        assert d == edit_distance(b, a)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))

    @given(_symbols, _symbols, _symbols)
    @settings(max_examples=40)
    def test_property_triangle_inequality(self, a, b, c):
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @given(_symbols)
    @settings(max_examples=30)
    def test_property_identity(self, a):
        assert edit_distance(a, a) == 0
