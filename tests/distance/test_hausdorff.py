"""Tests for Hausdorff distance."""

import numpy as np
import pytest

from repro.distance.hausdorff import hausdorff_distance


class TestHausdorff:
    def test_identical_is_zero(self):
        series = [1.0, 2.0, 0.5]
        assert hausdorff_distance(series, series) == pytest.approx(0.0)

    def test_symmetric(self):
        a, b = [0.0, 1.0, 2.0], [0.5, 1.5]
        assert hausdorff_distance(a, b) == pytest.approx(hausdorff_distance(b, a))

    def test_constant_offset(self):
        a = np.zeros(5)
        b = np.full(5, 2.0)
        assert hausdorff_distance(a, b) == pytest.approx(2.0)

    def test_non_negative(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            a, b = rng.normal(size=6), rng.normal(size=9)
            assert hausdorff_distance(a, b) >= 0

    def test_single_points(self):
        assert hausdorff_distance([1.0], [4.0]) == pytest.approx(3.0)
