"""Tests for Euclidean distance with resampling."""

import numpy as np
import pytest

from repro.distance.euclidean import euclidean_distance, resample_to_length


class TestResample:
    def test_same_length_copy(self):
        out = resample_to_length([1.0, 2.0, 3.0], 3)
        assert np.allclose(out, [1, 2, 3])

    def test_upsampling_preserves_endpoints(self):
        out = resample_to_length([0.0, 1.0], 5)
        assert out[0] == pytest.approx(0.0)
        assert out[-1] == pytest.approx(1.0)
        assert out.size == 5

    def test_downsampling(self):
        out = resample_to_length(np.linspace(0, 1, 100), 10)
        assert out.size == 10
        assert np.all(np.diff(out) > 0)

    def test_single_point_series(self):
        out = resample_to_length([3.0], 4)
        assert np.allclose(out, 3.0)

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            resample_to_length([1.0, 2.0], 0)


class TestEuclideanDistance:
    def test_identical(self):
        assert euclidean_distance([1.0, 2.0], [1.0, 2.0]) == pytest.approx(0.0)

    def test_known_value(self):
        assert euclidean_distance([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_symmetric(self):
        a, b = [1.0, 2.0, 3.0], [0.0, 1.0]
        assert euclidean_distance(a, b) == pytest.approx(euclidean_distance(b, a))

    def test_different_lengths_handled(self):
        # A constant series equals its stretched version after resampling.
        assert euclidean_distance([1.0, 1.0], [1.0, 1.0, 1.0, 1.0]) == pytest.approx(0.0)

    def test_triangle_inequality_sample(self):
        rng = np.random.default_rng(0)
        a, b, c = rng.normal(size=8), rng.normal(size=8), rng.normal(size=8)
        assert euclidean_distance(a, c) <= (
            euclidean_distance(a, b) + euclidean_distance(b, c) + 1e-9
        )
