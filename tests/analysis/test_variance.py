"""Tests for the analytical variance formulas."""

import numpy as np
import pytest

from repro.analysis.variance import (
    grr_variance,
    olh_variance,
    oue_variance,
    recommend_frequency_oracle,
)
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.ldp.unary import UnaryEncoding


class TestVarianceFormulas:
    def test_grr_matches_mechanism_formula(self):
        oracle = GeneralizedRandomizedResponse(2.0, domain=list("abcd"))
        assert grr_variance(2.0, 4, 1000) == pytest.approx(oracle.variance(1000))

    def test_oue_matches_mechanism_formula(self):
        oracle = UnaryEncoding(2.0, domain=list("abcd"), optimized=True)
        # OUE's closed form 4e^eps/(e^eps-1)^2 equals q(1-q)/(p-q)^2 with p=1/2.
        assert oue_variance(2.0, 1000) == pytest.approx(oracle.variance(1000), rel=1e-9)

    def test_variance_decreases_with_epsilon(self):
        assert grr_variance(4.0, 10, 500) < grr_variance(1.0, 10, 500)
        assert oue_variance(4.0, 500) < oue_variance(1.0, 500)

    def test_variance_scales_linearly_with_n(self):
        assert grr_variance(1.0, 5, 2000) == pytest.approx(2 * grr_variance(1.0, 5, 1000))

    def test_grr_variance_grows_with_domain(self):
        assert grr_variance(1.0, 50, 1000) > grr_variance(1.0, 5, 1000)

    def test_olh_close_to_oue(self):
        assert olh_variance(2.0, 1000) == pytest.approx(oue_variance(2.0, 1000))

    def test_empirical_grr_variance_close_to_formula(self):
        epsilon, d, n, trials = 1.0, 4, 2000, 40
        oracle = GeneralizedRandomizedResponse(epsilon, domain=list("abcd"))
        rng = np.random.default_rng(0)
        estimates = []
        for _ in range(trials):
            reports = [oracle.perturb("a", rng) for _ in range(n)]
            estimates.append(oracle.estimate_map(reports)["b"])
        empirical = np.var(estimates)
        assert empirical == pytest.approx(grr_variance(epsilon, d, n), rel=0.5)


class TestRecommendation:
    def test_small_domain_prefers_grr(self):
        assert recommend_frequency_oracle(2.0, domain_size=3) == "grr"

    def test_large_domain_prefers_oue(self):
        assert recommend_frequency_oracle(1.0, domain_size=500) == "oue"

    def test_boundary_monotone(self):
        """Once OUE wins at some domain size, it keeps winning for larger ones."""
        switched = False
        for d in range(2, 200):
            choice = recommend_frequency_oracle(1.5, domain_size=d)
            if choice == "oue":
                switched = True
            if switched:
                assert choice == "oue"
