"""Tests for the Theorem 4 bounds and the deployment planner."""

import pytest

from repro.analysis.planning import DeploymentPlan, plan_population
from repro.analysis.utility import (
    baseline_domain_bound,
    em_selection_probability,
    privshape_domain_bound,
    utility_improvement_bound,
)


class TestEmSelectionProbability:
    def test_probability_in_unit_interval(self):
        p = em_selection_probability(2.0, domain_size=20)
        assert 0.0 < p < 1.0

    def test_increases_with_epsilon(self):
        assert em_selection_probability(4.0, 20) > em_selection_probability(1.0, 20)

    def test_decreases_with_domain_size(self):
        assert em_selection_probability(2.0, 10) > em_selection_probability(2.0, 100)

    def test_zero_gap_gives_uniform(self):
        assert em_selection_probability(3.0, 10, score_gap=0.0) == pytest.approx(0.1)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            em_selection_probability(1.0, 5, n_optimal=6)
        with pytest.raises(ValueError):
            em_selection_probability(1.0, 5, score_gap=1.5)


class TestDomainBounds:
    def test_baseline_grows_exponentially(self):
        assert baseline_domain_bound(4, 1) == 4
        assert baseline_domain_bound(4, 2) == 12
        assert baseline_domain_bound(4, 5) == 4 * 3**4

    def test_privshape_bound_constant_in_level(self):
        assert privshape_domain_bound(3, 2, 4) == 18
        assert privshape_domain_bound(3, 6, 6) == min(3 * 6 * 5, (3 * 6) ** 2)

    def test_improvement_grows_with_depth(self):
        shallow = utility_improvement_bound(4, 2, 3, 2)
        deep = utility_improvement_bound(4, 6, 3, 2)
        assert deep > shallow

    def test_matches_paper_form(self):
        # t(t-1)^(l-1) / (c^2 k^2)
        assert utility_improvement_bound(4, 3, 3, 1) == pytest.approx(4 * 9 / 9)


class TestPlanPopulation:
    def test_plan_structure(self):
        plan = plan_population(epsilon=4.0, alphabet_size=4, expected_length=6, top_k=3)
        assert isinstance(plan, DeploymentPlan)
        assert plan.total_users > 0
        assert plan.length_users + plan.subshape_users <= plan.total_users
        assert "total users required" in plan.summary()

    def test_smaller_epsilon_needs_more_users(self):
        loose = plan_population(epsilon=4.0)
        tight = plan_population(epsilon=0.5)
        assert tight.total_users > loose.total_users

    def test_tighter_error_needs_more_users(self):
        loose = plan_population(epsilon=2.0, relative_error=0.2)
        tight = plan_population(epsilon=2.0, relative_error=0.02)
        assert tight.total_users > loose.total_users

    def test_rarer_shapes_need_more_users(self):
        common = plan_population(epsilon=2.0, minimum_shape_frequency=0.5)
        rare = plan_population(epsilon=2.0, minimum_shape_frequency=0.05)
        assert rare.total_users > common.total_users

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            plan_population(epsilon=1.0, relative_error=0.0)
        with pytest.raises(ValueError):
            plan_population(epsilon=1.0, minimum_shape_frequency=0.0)
        with pytest.raises(ValueError):
            plan_population(epsilon=1.0, population_fractions=(0.5, 0.5))

    def test_paper_scale_is_plausible(self):
        """At eps=4 and the paper's split, tens of thousands of users suffice
        to resolve shapes held by 20% of the population within 5%."""
        plan = plan_population(epsilon=4.0, alphabet_size=6, expected_length=6, top_k=6)
        assert 1_000 < plan.total_users < 1_000_000
