"""The registered ``task="shapelet"`` workload: inline behaviour and knobs."""

import pytest

from repro.api import (
    DataSpec,
    ExperimentSpec,
    PrivacySpec,
    RunResult,
    SAXSpec,
    SweepSpec,
    TASK_SHAPELET,
    available_tasks,
    task_registry,
)
from repro.exceptions import ConfigurationError
from repro.tasks.shapelet import SHAPELET_DEFAULTS, shapelet_knobs

SEED = 424
DATA = DataSpec(source="trace", n_users=300, seed=7)
SPEC = ExperimentSpec(
    mechanism="privshape",
    privacy=PrivacySpec(epsilon=6.0),
    sax=SAXSpec(alphabet_size=4),
)


@pytest.fixture(scope="module")
def result():
    return SPEC.run(DATA, task="shapelet", seed=SEED, evaluation_size=100)


class TestTaskRegistry:
    def test_shapelet_registered(self):
        assert TASK_SHAPELET in available_tasks()
        entry = task_registry.get(TASK_SHAPELET)
        assert entry.needs_labels
        assert entry.all_backends
        assert "evaluation_size" in entry.options

    def test_unknown_task_still_rejected(self):
        with pytest.raises(ConfigurationError, match="task"):
            SPEC.run(DATA, task="shapelets", seed=SEED)


class TestShapeletRun:
    def test_run_result_schema(self, result):
        assert result.task == "shapelet"
        assert result.backend == "inline"
        assert result.estimates  # the extraction phase's shapes ride along
        assert 0.0 <= result.metrics["accuracy"] <= 1.0
        assert result.metrics["n_shapelets"] >= 1
        assert result.details["n_train"] + result.details["n_test"] == 100
        for entry in result.details["shapelets"]:
            assert set(entry) >= {"symbols", "gain", "threshold"}

    def test_round_trips_through_json(self, result):
        clone = RunResult.from_json(result.to_json())
        assert clone.fingerprint() == result.fingerprint()

    def test_deterministic_under_seed(self, result):
        again = SPEC.run(DATA, task="shapelet", seed=SEED, evaluation_size=100)
        assert again.fingerprint() == result.fingerprint()
        assert again.metrics["accuracy"] == result.metrics["accuracy"]

    def test_telemetry_block_surfaces_stage_spans(self):
        traced = SPEC.run(DATA, task="shapelet", seed=SEED,
                          evaluation_size=100, telemetry=True)
        assert traced.telemetry is not None
        span_names = set(traced.telemetry["spans"]["by_name"])
        assert {"shapelet.extract", "shapelet.discover",
                "shapelet.transform", "shapelet.classify"} <= span_names
        assert "shapelet.min_distance" in traced.telemetry["kernels"]

    def test_unlabelled_data_rejected(self):
        with pytest.raises(ConfigurationError, match="label"):
            SPEC.run(DataSpec(source="synthetic", n_users=500, seed=1),
                     task="shapelet", seed=SEED)

    def test_misspelled_option_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown or inert"):
            SPEC.run(DATA, task="shapelet", seed=SEED, evaluation_sizes=5)


class TestShapeletKnobs:
    def test_defaults(self):
        assert shapelet_knobs(SPEC) == SHAPELET_DEFAULTS

    def test_options_override(self):
        spec = ExperimentSpec(options={"n_shapelets": 3,
                                       "shapelet_max_length": 4})
        knobs = shapelet_knobs(spec)
        assert knobs["n_shapelets"] == 3
        assert knobs["shapelet_max_length"] == 4

    def test_invalid_counts_rejected(self):
        with pytest.raises(ConfigurationError, match="n_shapelets"):
            shapelet_knobs(ExperimentSpec(options={"n_shapelets": 0}))
        with pytest.raises(ConfigurationError, match="shapelet_max_length"):
            shapelet_knobs(ExperimentSpec(
                options={"shapelet_min_length": 4, "shapelet_max_length": 2}
            ))

    def test_spec_options_change_the_run(self):
        small = ExperimentSpec(
            mechanism="privshape", privacy=PrivacySpec(epsilon=6.0),
            sax=SAXSpec(alphabet_size=4), options={"n_shapelets": 2},
        )
        result = small.run(DATA, task="shapelet", seed=SEED,
                           evaluation_size=100)
        assert result.metrics["n_shapelets"] <= 2


class TestShapeletSweep:
    def test_axes_expand_in_order(self):
        sweep = SweepSpec(base=SPEC, task="shapelet", epsilons=(1.0, 4.0),
                          shapelet_counts=(2, 5))
        assert list(sweep.axes()) == ["shapelet_count", "epsilon"]
        points = sweep.points()
        assert len(points) == 4
        assert points[0] == {"shapelet_count": 2, "epsilon": 1.0}

    def test_spec_for_maps_axes_to_options(self):
        sweep = SweepSpec(base=SPEC, task="shapelet",
                          shapelet_counts=(3,), shapelet_lengths=(4,))
        spec = sweep.spec_for({"shapelet_count": 3, "shapelet_length": 4})
        assert spec.options["n_shapelets"] == 3
        assert spec.options["shapelet_max_length"] == 4

    def test_axes_rejected_for_other_tasks(self):
        with pytest.raises(ConfigurationError, match="shapelet"):
            SweepSpec(base=SPEC, task="extract", shapelet_counts=(2,))

    def test_round_trips_through_json(self):
        sweep = SweepSpec(base=SPEC, task="shapelet", epsilons=(2.0,),
                          shapelet_counts=(2, 4), shapelet_lengths=(3,))
        assert SweepSpec.from_json(sweep.to_json()) == sweep

    def test_accuracy_vs_epsilon_grid(self):
        sweep = SweepSpec(base=SPEC, task="shapelet", epsilons=(1.0, 6.0))
        result = sweep.run(DATA, seed=SEED, evaluation_size=80)
        assert len(result.runs) == 2
        for run in result.runs:
            assert run.task == "shapelet"
            assert "accuracy" in run.metrics


class TestDegradation:
    def test_low_epsilon_degrades_to_zero_not_raise(self):
        """A grid point whose extraction finds nothing reports accuracy 0.0."""
        starved = ExperimentSpec(
            mechanism="privshape", privacy=PrivacySpec(epsilon=0.01),
            sax=SAXSpec(alphabet_size=4),
        )
        result = starved.run(
            DataSpec(source="waves", n_users=150, seed=3),
            task="shapelet", seed=SEED, evaluation_size=60,
        )
        assert result.task == "shapelet"
        assert 0.0 <= result.metrics["accuracy"] <= 1.0
