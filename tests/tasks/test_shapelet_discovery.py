"""Discovery: enumeration, vectorized information gain, and selection."""

import numpy as np
import pytest

from repro.tasks.shapelet import (
    ShapeletCandidate,
    discover_shapelets,
    enumerate_windows,
    information_gain,
    score_candidates,
    select_shapelets,
)


def scalar_information_gain(distances, labels):
    """The historical per-split Python loop (frozen reference)."""
    distances = np.asarray(distances, dtype=float)
    labels = np.asarray(labels)
    order = np.argsort(distances)
    sorted_distances = distances[order]
    sorted_labels = labels[order]

    def entropy(values):
        if values.size == 0:
            return 0.0
        _, counts = np.unique(values, return_counts=True)
        proportions = counts / values.size
        return float(-np.sum(proportions * np.log2(proportions)))

    total = entropy(sorted_labels)
    best_gain, best_threshold = 0.0, float(sorted_distances[0])
    for split in range(1, distances.size):
        if np.isclose(sorted_distances[split], sorted_distances[split - 1]):
            continue
        left, right = sorted_labels[:split], sorted_labels[split:]
        weighted = (left.size * entropy(left) + right.size * entropy(right)) / labels.size
        gain = total - weighted
        if gain > best_gain:
            best_gain = gain
            best_threshold = float(
                (sorted_distances[split] + sorted_distances[split - 1]) / 2.0
            )
    return best_gain, best_threshold


class TestEnumerateWindows:
    def test_window_lengths_and_reconstruction(self):
        candidates = enumerate_windows(["abc"], alphabet_size=4,
                                       min_length=2, points_per_symbol=8)
        lengths = {candidate.length for candidate in candidates}
        assert lengths == {16, 24}
        symbols = {candidate.symbols for candidate in candidates}
        assert symbols == {"ab", "bc", "abc"}

    def test_provenance_recorded(self):
        candidates = enumerate_windows(["abcd"], alphabet_size=4,
                                       min_length=2, max_length=2)
        assert [c.start for c in candidates] == [0, 1, 2]
        assert all(c.source_shape == "abcd" for c in candidates)
        assert all(c.source_index == 0 for c in candidates)

    def test_deduplicates_equal_values(self):
        candidates = enumerate_windows(["aa", "aa"], alphabet_size=4)
        assert len(candidates) == 1

    def test_labels_attach_and_split_duplicates(self):
        candidates = enumerate_windows(["aa", "aa"], alphabet_size=4,
                                       labels=[0, 1])
        assert [c.label for c in candidates] == [0, 1]

    def test_describe_is_plain_data(self):
        candidate = enumerate_windows(["ab"], alphabet_size=4, labels=[3])[0]
        payload = candidate.describe()
        assert payload["symbols"] == "ab"
        assert payload["label"] == 3
        assert set(payload) == {
            "symbols", "source_shape", "start", "length", "gain",
            "threshold", "label",
        }


class TestInformationGain:
    def test_perfect_split(self):
        gain, threshold = information_gain(
            [0.1, 0.2, 0.9, 1.0], [0, 0, 1, 1]
        )
        assert gain == pytest.approx(1.0)
        assert 0.2 < threshold < 0.9

    def test_no_information(self):
        gain, _ = information_gain([0.1, 0.2, 0.3, 0.4], [0, 1, 0, 1])
        assert gain == pytest.approx(0.0, abs=0.35)

    def test_uniform_labels_give_zero_gain(self):
        gain, threshold = information_gain([0.1, 0.5, 0.9], [1, 1, 1])
        assert gain == 0.0
        assert threshold == pytest.approx(0.1)

    def test_equal_distances_unsplittable(self):
        gain, threshold = information_gain([0.5, 0.5, 0.5], [0, 1, 0])
        assert gain == 0.0
        assert threshold == pytest.approx(0.5)

    def test_single_point(self):
        gain, threshold = information_gain([0.7], [1])
        assert gain == 0.0
        assert threshold == pytest.approx(0.7)

    def test_empty_or_mismatched_rejected(self):
        with pytest.raises(ValueError):
            information_gain([], [])
        with pytest.raises(ValueError):
            information_gain([0.1], [0, 1])

    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(13)
        for _ in range(50):
            n = int(rng.integers(2, 30))
            distances = rng.choice([0.1, 0.25, 0.5, 0.9], size=n)
            labels = rng.integers(0, 3, size=n)
            expected = scalar_information_gain(distances, labels)
            actual = information_gain(distances, labels)
            assert actual[0] == pytest.approx(expected[0], abs=1e-9)
            assert actual[1] == pytest.approx(expected[1], abs=1e-9)


class TestScoreAndSelect:
    def test_score_fills_gain_in_input_order(self):
        rng = np.random.default_rng(5)
        series = [rng.normal(size=20) for _ in range(12)]
        # Class 1 carries an injected bump the first candidate matches.
        for i in range(6):
            series[i][5:9] = [2.0, 3.0, 3.0, 2.0]
        labels = [1] * 6 + [0] * 6
        candidates = [
            ShapeletCandidate(values=(2.0, 3.0, 3.0, 2.0), symbols="xx",
                              source_shape="xxxx", source_index=0, start=0),
            ShapeletCandidate(values=(0.0, 0.0), symbols="yy",
                              source_shape="yyyy", source_index=1, start=0),
        ]
        scored = score_candidates(candidates, series, labels)
        assert [c.symbols for c in scored] == ["xx", "yy"]
        assert scored[0].gain > scored[1].gain
        assert scored[0].gain == pytest.approx(1.0)

    def test_score_empty_is_empty(self):
        assert score_candidates([], [np.ones(3)], [0]) == []

    def test_select_ranks_by_gain(self):
        def candidate(symbols, start, gain, source="abcdef"):
            return ShapeletCandidate(
                values=tuple(float(i) for i in range(8 * len(symbols))),
                symbols=symbols, source_shape=source, source_index=0,
                start=start, gain=gain,
            )

        scored = [candidate("ab", 0, 0.3), candidate("cd", 2, 0.9),
                  candidate("ef", 4, 0.6)]
        selected = select_shapelets(scored, 2)
        assert [c.symbols for c in selected] == ["cd", "ef"]

    def test_select_prunes_overlapping_windows(self):
        def candidate(symbols, start, gain):
            return ShapeletCandidate(
                values=tuple(float(i) for i in range(8 * len(symbols))),
                symbols=symbols, source_shape="abcde", source_index=0,
                start=start, gain=gain,
            )

        # "abc"@0 and "bcd"@1 overlap 2/3 > 0.5 → the second is pruned in
        # favour of the disjoint "de"@3.
        scored = [candidate("abc", 0, 0.9), candidate("bcd", 1, 0.8),
                  candidate("de", 3, 0.2)]
        selected = select_shapelets(scored, 2)
        assert [c.symbols for c in selected] == ["abc", "de"]

    def test_pruned_candidates_backfill(self):
        def candidate(symbols, start, gain):
            return ShapeletCandidate(
                values=tuple(float(i) for i in range(8 * len(symbols))),
                symbols=symbols, source_shape="abcd", source_index=0,
                start=start, gain=gain,
            )

        scored = [candidate("abc", 0, 0.9), candidate("bcd", 1, 0.8)]
        selected = select_shapelets(scored, 2)
        assert len(selected) == 2

    def test_different_shapes_never_overlap(self):
        a = ShapeletCandidate(values=(1.0,) * 16, symbols="ab",
                              source_shape="abab", source_index=0, start=0,
                              gain=0.9)
        b = ShapeletCandidate(values=(2.0,) * 16, symbols="ab",
                              source_shape="abab", source_index=1, start=0,
                              gain=0.8)
        assert [c.source_index for c in select_shapelets([a, b], 2)] == [0, 1]


class TestDiscoverShapelets:
    def test_end_to_end_finds_discriminative_window(self):
        rng = np.random.default_rng(17)
        series, labels = [], []
        for label in (0, 1):
            for _ in range(10):
                values = rng.normal(scale=0.1, size=30)
                if label == 1:
                    values[10:18] += 2.0
                series.append(values)
                labels.append(label)
        shapelets = discover_shapelets(
            ["ddddd", "aaaaa"], series, labels, alphabet_size=4, n_shapelets=3
        )
        assert 0 < len(shapelets) <= 3
        assert shapelets[0].gain > 0.5

    def test_no_shapes_is_empty(self):
        assert discover_shapelets([], [np.ones(5)], [0], alphabet_size=4) == []
