"""Vectorized transform kernels vs. the scalar reference, plus edge cases.

The scalar reference loop here is a frozen copy of the pre-vectorization
``extensions.shapelets.sliding_min_distance`` — the contract the kernels must
reproduce to float tolerance.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DataShapeError
from repro.tasks.shapelet import (
    SIGMA_MIN,
    ShapeletTransform,
    min_distance_matrix,
    sliding_min_distance,
    subsequences,
    z_normalize,
)


def scalar_min_distance(series, shapelet_values) -> float:
    """The historical per-window Python loop (frozen reference)."""
    series = np.asarray(series, dtype=float)
    values = np.asarray(shapelet_values, dtype=float)
    length = values.size
    if series.size < length:
        return float(
            np.linalg.norm(series - values[: series.size]) / max(series.size, 1)
        )
    best = np.inf
    for start in range(series.size - length + 1):
        window = series[start : start + length]
        distance = float(np.linalg.norm(window - values))
        if distance < best:
            best = distance
    return best / length


finite = st.floats(min_value=-100.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


class TestSubsequences:
    def test_every_window_in_order(self):
        windows = subsequences(np.arange(5.0), 3)
        assert windows.shape == (3, 3)
        assert np.array_equal(windows[0], [0.0, 1.0, 2.0])
        assert np.array_equal(windows[2], [2.0, 3.0, 4.0])

    def test_length_one_windows(self):
        windows = subsequences(np.asarray([4.0, 5.0]), 1)
        assert windows.shape == (2, 1)
        assert np.array_equal(windows.ravel(), [4.0, 5.0])

    def test_window_covering_whole_series(self):
        windows = subsequences(np.asarray([1.0, 2.0]), 2)
        assert windows.shape == (1, 2)

    def test_too_long_window_rejected(self):
        with pytest.raises(DataShapeError, match="no windows"):
            subsequences(np.asarray([1.0]), 2)

    def test_bad_length_rejected(self):
        with pytest.raises(DataShapeError, match="length"):
            subsequences(np.asarray([1.0, 2.0]), 0)

    def test_non_1d_rejected(self):
        with pytest.raises(DataShapeError, match="1-d"):
            subsequences(np.ones((2, 2)), 1)


class TestZNormalize:
    def test_constant_window_maps_to_zero(self):
        """The σ_min floor: zero variance divides by 1.0, not by ~0."""
        normalized = z_normalize(np.asarray([[3.0, 3.0, 3.0]]))
        assert np.all(np.isfinite(normalized))
        assert np.allclose(normalized, 0.0)

    def test_near_constant_window_stays_finite(self):
        window = np.full((1, 4), 2.0)
        window[0, 0] += 1e-9
        normalized = z_normalize(window)
        assert np.all(np.isfinite(normalized))
        assert np.max(np.abs(normalized)) < 1.0

    def test_regular_window_is_z_scored(self):
        normalized = z_normalize(np.asarray([[0.0, 1.0, 2.0]]))
        assert np.isclose(normalized.mean(), 0.0)
        assert np.isclose(normalized.std(), 1.0)

    @given(st.lists(finite, min_size=2, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_always_finite(self, values):
        normalized = z_normalize(np.asarray([values]))
        assert np.all(np.isfinite(normalized))

    def test_sigma_floor_is_documented_value(self):
        assert SIGMA_MIN == 1e-3


class TestSlidingMinDistance:
    def test_exact_subsequence_is_zero(self):
        series = np.asarray([0.0, 1.0, 2.0, 3.0, 4.0])
        assert sliding_min_distance(series, [2.0, 3.0]) == pytest.approx(0.0)

    def test_matches_scalar_reference(self):
        rng = np.random.default_rng(7)
        series = rng.normal(size=50)
        shapelet = rng.normal(size=7)
        assert sliding_min_distance(series, shapelet) == pytest.approx(
            scalar_min_distance(series, shapelet)
        )

    def test_short_series_prefix_path(self):
        series = np.asarray([1.0, 2.0])
        shapelet = np.asarray([1.0, 2.0, 9.0])
        assert sliding_min_distance(series, shapelet) == pytest.approx(
            scalar_min_distance(series, shapelet)
        )

    def test_shapelet_length_equals_series_length(self):
        series = np.asarray([1.0, 2.0, 3.0])
        assert sliding_min_distance(series, series) == pytest.approx(0.0)

    def test_empty_shapelet_rejected(self):
        with pytest.raises(DataShapeError, match="at least one value"):
            sliding_min_distance(np.asarray([1.0]), [])

    def test_constant_series_normalized_is_finite(self):
        """Satellite regression: zero-variance windows + normalize=True."""
        distance = sliding_min_distance(
            np.full(10, 5.0), [1.0, 2.0, 3.0], normalize=True
        )
        assert np.isfinite(distance)

    @given(
        st.lists(finite, min_size=1, max_size=30),
        st.lists(finite, min_size=1, max_size=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_matches_scalar_reference(self, series, shapelet):
        vectorized = sliding_min_distance(series, shapelet)
        assert vectorized == pytest.approx(
            scalar_min_distance(series, shapelet), abs=1e-9
        )

    @given(st.lists(finite, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_length_one_shapelet(self, series):
        """A length-1 shapelet's min distance is the closest point."""
        distance = sliding_min_distance(series, [0.0])
        assert distance == pytest.approx(min(abs(v) for v in series), abs=1e-9)

    @given(st.lists(finite, min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_shapelet_equal_to_series(self, series):
        assert sliding_min_distance(series, series) == pytest.approx(0.0, abs=1e-9)

    @given(st.lists(finite, min_size=2, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_property_constant_series_finite_normalized(self, series):
        """Constant series + σ_min floor never produce inf/NaN."""
        constant = np.full(len(series), 3.0)
        distance = sliding_min_distance(constant, series, normalize=True)
        assert np.isfinite(distance)


class TestMinDistanceMatrix:
    def test_matches_per_pair_kernel(self):
        rng = np.random.default_rng(11)
        series_list = [rng.normal(size=n) for n in (30, 45, 12)]
        shapelets = [rng.normal(size=n) for n in (4, 4, 7, 9)]
        matrix = min_distance_matrix(series_list, shapelets)
        assert matrix.shape == (3, 4)
        for row, series in enumerate(series_list):
            for column, shapelet in enumerate(shapelets):
                assert matrix[row, column] == pytest.approx(
                    scalar_min_distance(series, shapelet), abs=1e-9
                )

    def test_short_series_uses_prefix_path(self):
        series_list = [np.asarray([1.0, 2.0])]
        shapelets = [np.asarray([1.0, 2.0, 3.0, 4.0])]
        matrix = min_distance_matrix(series_list, shapelets)
        assert matrix[0, 0] == pytest.approx(
            scalar_min_distance(series_list[0], shapelets[0])
        )

    def test_empty_inputs_give_empty_matrix(self):
        assert min_distance_matrix([], [np.asarray([1.0])]).shape == (0, 1)
        assert min_distance_matrix([np.asarray([1.0])], []).shape == (1, 0)

    def test_gram_expansion_never_negative(self):
        """Exact matches must report 0.0, not NaN from a negative sqrt."""
        series = np.asarray([5.0, 6.0, 7.0, 8.0])
        matrix = min_distance_matrix([series], [series[1:3]])
        assert matrix[0, 0] == pytest.approx(0.0)
        assert not np.isnan(matrix).any()

    @given(
        st.lists(st.lists(finite, min_size=3, max_size=15),
                 min_size=1, max_size=4),
        st.lists(st.lists(finite, min_size=1, max_size=5),
                 min_size=1, max_size=4),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_matrix_matches_scalar(self, series_list, shapelets):
        matrix = min_distance_matrix(
            [np.asarray(s) for s in series_list],
            [np.asarray(s) for s in shapelets],
        )
        for row, series in enumerate(series_list):
            for column, shapelet in enumerate(shapelets):
                assert matrix[row, column] == pytest.approx(
                    scalar_min_distance(series, shapelet), abs=1e-6
                )


class TestShapeletTransform:
    def test_feature_matrix_shape_and_values(self):
        rng = np.random.default_rng(3)
        series_list = [rng.normal(size=25) for _ in range(5)]
        shapelets = (tuple(rng.normal(size=4)), tuple(rng.normal(size=6)))
        stage = ShapeletTransform(shapelets=shapelets)
        features = stage.transform(series_list)
        assert features.shape == (5, 2)
        assert np.array_equal(
            features, min_distance_matrix(series_list, list(shapelets))
        )

    def test_accepts_objects_with_values(self):
        class Candidate:
            values = (1.0, 2.0)

        stage = ShapeletTransform(shapelets=(Candidate(),))
        assert stage.n_features == 1
        assert stage.shapelets == ((1.0, 2.0),)

    def test_callable_alias(self):
        stage = ShapeletTransform(shapelets=((1.0, 2.0),))
        series = [np.asarray([1.0, 2.0, 3.0])]
        assert np.array_equal(stage(series), stage.transform(series))

    def test_empty_shapelet_set_rejected(self):
        with pytest.raises(DataShapeError, match="at least one shapelet"):
            ShapeletTransform(shapelets=())
