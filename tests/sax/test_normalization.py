"""Tests for z-score normalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sax.normalization import zscore_normalize


class TestZScoreNormalize:
    def test_zero_mean_unit_std(self):
        out = zscore_normalize([1.0, 2.0, 3.0, 4.0])
        assert out.mean() == pytest.approx(0.0, abs=1e-12)
        assert out.std() == pytest.approx(1.0, abs=1e-12)

    def test_constant_series_becomes_zero(self):
        out = zscore_normalize([5.0, 5.0, 5.0])
        assert np.allclose(out, 0.0)

    def test_preserves_length(self):
        assert zscore_normalize(np.arange(17)).size == 17

    def test_order_preserved(self):
        out = zscore_normalize([3.0, 1.0, 2.0])
        assert out[0] > out[2] > out[1]

    def test_ddof_changes_scale(self):
        data = [1.0, 2.0, 3.0, 4.0]
        population = zscore_normalize(data, ddof=0)
        sample = zscore_normalize(data, ddof=1)
        assert np.abs(sample).max() < np.abs(population).max()

    @given(
        arrays(
            dtype=float,
            shape=st.integers(min_value=2, max_value=50),
            elements=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
        )
    )
    @settings(max_examples=50)
    def test_property_output_is_standardized_or_zero(self, data):
        out = zscore_normalize(data)
        if np.allclose(out, 0.0):
            return
        assert out.mean() == pytest.approx(0.0, abs=1e-8)
        assert out.std() == pytest.approx(1.0, abs=1e-8)
