"""Tests for symbol-to-value reconstruction."""

import numpy as np
import pytest

from repro.exceptions import DomainError
from repro.sax.breakpoints import symbol_centroids
from repro.sax.reconstruction import symbols_to_values


class TestSymbolsToValues:
    def test_values_match_centroids(self):
        centroids = symbol_centroids(4)
        out = symbols_to_values(("a", "c"), alphabet_size=4)
        assert np.allclose(out, [centroids["a"], centroids["c"]])

    def test_repeat_stretches_output(self):
        out = symbols_to_values(("a", "b"), alphabet_size=3, repeat=5)
        assert out.size == 10
        assert np.allclose(out[:5], out[0])

    def test_monotone_shape_monotone_values(self):
        out = symbols_to_values(tuple("abcd"), alphabet_size=4)
        assert np.all(np.diff(out) > 0)

    def test_unknown_symbol_raises(self):
        with pytest.raises(DomainError):
            symbols_to_values(("a", "z"), alphabet_size=4)

    def test_invalid_repeat(self):
        with pytest.raises(ValueError):
            symbols_to_values(("a",), alphabet_size=3, repeat=0)

    def test_empty_shape(self):
        assert symbols_to_values((), alphabet_size=3).size == 0
