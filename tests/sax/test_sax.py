"""Tests for the SAX transformer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sax.sax import SAXTransformer


class TestSAXTransformer:
    def test_paper_style_example(self):
        """Step pattern maps to the expected 'bca' style symbols."""
        sax = SAXTransformer(alphabet_size=3, segment_length=8)
        series = [0.0] * 8 + [3.0] * 8 + [-3.0] * 8
        assert "".join(sax.transform(series)) == "bca"

    def test_output_length_is_ceil_m_over_w(self):
        sax = SAXTransformer(alphabet_size=4, segment_length=10)
        assert len(sax.transform(np.random.default_rng(0).normal(size=128))) == 13

    def test_symbols_in_alphabet(self):
        sax = SAXTransformer(alphabet_size=5, segment_length=4)
        symbols = sax.transform(np.random.default_rng(1).normal(size=60))
        assert set(symbols) <= set(sax.alphabet)

    def test_monotone_series_monotone_symbols(self):
        sax = SAXTransformer(alphabet_size=4, segment_length=5)
        symbols = sax.transform(np.linspace(-3, 3, 40))
        assert symbols == sorted(symbols)
        assert symbols[0] == "a" and symbols[-1] == "d"

    def test_constant_series_maps_to_middle_symbols(self):
        sax = SAXTransformer(alphabet_size=3, segment_length=4)
        symbols = sax.transform(np.full(16, 7.0))
        assert set(symbols) == {"b"}

    def test_normalization_disabled(self):
        sax = SAXTransformer(alphabet_size=3, segment_length=2, normalize=False)
        # Raw values far above the breakpoints all map to the top symbol.
        assert set(sax.transform([10.0, 11.0, 12.0, 13.0])) == {"c"}

    def test_symbolize_values_direct(self):
        sax = SAXTransformer(alphabet_size=3, segment_length=1)
        assert sax.symbolize_values([-2.0, 0.0, 2.0]) == ["a", "b", "c"]

    def test_transform_dataset(self):
        sax = SAXTransformer(alphabet_size=3, segment_length=4)
        rng = np.random.default_rng(2)
        dataset = [rng.normal(size=20) for _ in range(5)]
        assert len(sax.transform_dataset(dataset)) == 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SAXTransformer(alphabet_size=1, segment_length=4)
        with pytest.raises(ValueError):
            SAXTransformer(alphabet_size=4, segment_length=0)

    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=20),
        st.integers(min_value=2, max_value=200),
    )
    @settings(max_examples=40)
    def test_property_length_and_alphabet(self, t, w, m):
        rng = np.random.default_rng(m * 7 + w)
        sax = SAXTransformer(alphabet_size=t, segment_length=w)
        symbols = sax.transform(rng.normal(size=m))
        assert len(symbols) == int(np.ceil(m / w))
        assert set(symbols) <= set(sax.alphabet)
