"""Tests for Compressive SAX."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sax.compressive import CompressiveSAX, compress_symbols


class TestCompressSymbols:
    def test_paper_example(self):
        assert "".join(compress_symbols("aaaccccccbbbbaaa")) == "acba"

    def test_empty(self):
        assert compress_symbols([]) == []


class TestCompressiveSAX:
    def test_returns_tuple(self):
        transformer = CompressiveSAX(alphabet_size=3, segment_length=8)
        out = transformer.transform([0.0] * 8 + [3.0] * 8 + [-3.0] * 8)
        assert isinstance(out, tuple)

    def test_no_consecutive_repeats(self):
        transformer = CompressiveSAX(alphabet_size=4, segment_length=5)
        rng = np.random.default_rng(0)
        for _ in range(20):
            shape = transformer.transform(rng.normal(size=100))
            assert all(shape[i] != shape[i + 1] for i in range(len(shape) - 1))

    def test_compress_false_keeps_repeats(self):
        transformer = CompressiveSAX(alphabet_size=3, segment_length=8, compress=False)
        series = [0.0] * 24 + [5.0] * 24
        shape = transformer.transform(series)
        assert len(shape) == 6  # ceil(48 / 8) segments, repeats kept

    def test_compression_shortens_or_equals(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=200)
        compressed = CompressiveSAX(alphabet_size=4, segment_length=10).transform(series)
        plain = CompressiveSAX(alphabet_size=4, segment_length=10, compress=False).transform(series)
        assert len(compressed) <= len(plain)

    def test_speed_invariance(self):
        """The same gesture at half speed (every point doubled) yields the same shape."""
        transformer = CompressiveSAX(alphabet_size=4, segment_length=4)
        base = np.concatenate([np.linspace(-2, 2, 40), np.linspace(2, -2, 40)])
        slow = np.repeat(base, 2)
        assert transformer.transform(base) == transformer.transform(slow)

    def test_transform_string(self):
        transformer = CompressiveSAX(alphabet_size=3, segment_length=8)
        out = transformer.transform_string([0.0] * 8 + [3.0] * 8 + [-3.0] * 8)
        assert out == "bca"

    def test_transform_dataset_length(self):
        transformer = CompressiveSAX(alphabet_size=3, segment_length=5)
        rng = np.random.default_rng(2)
        assert len(transformer.transform_dataset([rng.normal(size=30)] * 4)) == 4

    def test_alphabet_property(self):
        assert CompressiveSAX(alphabet_size=5, segment_length=2).alphabet == list("abcde")

    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=20, max_value=120))
    @settings(max_examples=30)
    def test_property_shape_is_nonempty_and_valid(self, t, m):
        rng = np.random.default_rng(m + t)
        transformer = CompressiveSAX(alphabet_size=t, segment_length=7)
        shape = transformer.transform(rng.normal(size=m))
        assert len(shape) >= 1
        assert set(shape) <= set(transformer.alphabet)
        assert all(shape[i] != shape[i + 1] for i in range(len(shape) - 1))
