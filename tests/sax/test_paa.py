"""Tests for Piecewise Aggregate Approximation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sax.paa import piecewise_aggregate, segment_boundaries


class TestSegmentBoundaries:
    def test_exact_division(self):
        assert segment_boundaries(8, 4) == [(0, 4), (4, 8)]

    def test_remainder_goes_to_last_segment(self):
        boundaries = segment_boundaries(10, 4)
        assert boundaries == [(0, 4), (4, 8), (8, 10)]

    def test_segment_longer_than_series(self):
        assert segment_boundaries(3, 10) == [(0, 3)]

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            segment_boundaries(0, 4)
        with pytest.raises(ValueError):
            segment_boundaries(4, 0)

    @given(st.integers(1, 500), st.integers(1, 50))
    @settings(max_examples=50)
    def test_property_boundaries_cover_series(self, length, w):
        boundaries = segment_boundaries(length, w)
        assert boundaries[0][0] == 0
        assert boundaries[-1][1] == length
        for (s0, e0), (s1, _) in zip(boundaries, boundaries[1:]):
            assert e0 == s1
            assert e0 > s0


class TestPiecewiseAggregate:
    def test_paper_segment_count(self):
        """A 128-point series with w=8 becomes 16 averaged segments (Fig. 3)."""
        series = np.sin(np.linspace(0, 4 * np.pi, 128))
        assert piecewise_aggregate(series, 8).size == 16

    def test_averages_are_correct(self):
        out = piecewise_aggregate([1.0, 3.0, 5.0, 7.0], 2)
        assert np.allclose(out, [2.0, 6.0])

    def test_single_segment(self):
        out = piecewise_aggregate([1.0, 2.0, 3.0], 10)
        assert np.allclose(out, [2.0])

    def test_constant_series(self):
        out = piecewise_aggregate(np.full(20, 3.3), 7)
        assert np.allclose(out, 3.3)

    @given(st.integers(2, 200), st.integers(1, 20))
    @settings(max_examples=40)
    def test_property_mean_preserved_for_exact_division(self, n_segments, w):
        rng = np.random.default_rng(n_segments * 31 + w)
        series = rng.normal(size=n_segments * w)
        aggregated = piecewise_aggregate(series, w)
        assert aggregated.mean() == pytest.approx(series.mean(), abs=1e-9)
