"""Tests for SAX breakpoint tables and symbol centroids."""

import numpy as np
import pytest
from scipy import stats

from repro.sax.breakpoints import (
    MAX_ALPHABET_SIZE,
    gaussian_breakpoints,
    symbol_alphabet,
    symbol_centroids,
)


class TestGaussianBreakpoints:
    def test_paper_lookup_table_t3(self):
        """t=3 gives the -0.43 / 0.43 cut points quoted in the paper's Fig. 3."""
        breakpoints = gaussian_breakpoints(3)
        assert breakpoints == pytest.approx([-0.4307, 0.4307], abs=1e-3)

    def test_count(self):
        assert gaussian_breakpoints(6).size == 5

    def test_sorted_and_symmetric(self):
        breakpoints = gaussian_breakpoints(5)
        assert np.all(np.diff(breakpoints) > 0)
        assert np.allclose(breakpoints, -breakpoints[::-1])

    def test_equiprobable_regions(self):
        breakpoints = gaussian_breakpoints(4)
        cdf = stats.norm.cdf(breakpoints)
        assert cdf == pytest.approx([0.25, 0.5, 0.75], abs=1e-9)

    @pytest.mark.parametrize("t", [0, 1, MAX_ALPHABET_SIZE + 1])
    def test_invalid_sizes(self, t):
        with pytest.raises(ValueError):
            gaussian_breakpoints(t)


class TestSymbolAlphabet:
    def test_symbols(self):
        assert symbol_alphabet(4) == ["a", "b", "c", "d"]

    def test_max_size(self):
        assert len(symbol_alphabet(MAX_ALPHABET_SIZE)) == 26

    def test_too_large(self):
        with pytest.raises(ValueError):
            symbol_alphabet(27)

    def test_returns_fresh_list(self):
        first = symbol_alphabet(3)
        first.append("z")
        assert symbol_alphabet(3) == ["a", "b", "c"]


class TestSymbolCentroids:
    def test_keys_match_alphabet(self):
        assert sorted(symbol_centroids(5)) == symbol_alphabet(5)

    def test_monotone_increasing(self):
        centroids = symbol_centroids(6)
        values = [centroids[s] for s in symbol_alphabet(6)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_symmetric_about_zero(self):
        centroids = symbol_centroids(4)
        assert centroids["a"] == pytest.approx(-centroids["d"], abs=1e-9)
        assert centroids["b"] == pytest.approx(-centroids["c"], abs=1e-9)

    def test_centroids_lie_inside_their_regions(self):
        t = 5
        breakpoints = gaussian_breakpoints(t)
        edges = np.concatenate([[-np.inf], breakpoints, [np.inf]])
        centroids = symbol_centroids(t)
        for symbol, low, high in zip(symbol_alphabet(t), edges[:-1], edges[1:]):
            assert low < centroids[symbol] < high
