"""Tests for the process-local metrics registry and Prometheus rendering."""

import pytest

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
    render_snapshot,
)
from repro.obs.promtext import parse_prometheus_text


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("privshape_things_total", "Things.")
        assert counter.value() == 0
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_rejects_negative_increments(self):
        counter = MetricsRegistry().counter("privshape_things_total", "Things.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_set_total_is_monotonic(self):
        # set_total mirrors an authoritative instance counter at scrape time;
        # a stale mirror (checkpoint replay) must never move the total back.
        counter = MetricsRegistry().counter("privshape_things_total", "Things.")
        counter.set_total(10)
        counter.set_total(4)
        assert counter.value() == 10

    def test_labelled_series_are_independent(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "privshape_batches_total", "Batches.", labelnames=("result",)
        )
        counter.inc(result="accepted")
        counter.inc(3, result="rejected")
        assert counter.value(result="accepted") == 1
        assert counter.value(result="rejected") == 3

    def test_missing_label_raises(self):
        counter = MetricsRegistry().counter(
            "privshape_batches_total", "Batches.", labelnames=("result",)
        )
        with pytest.raises(ValueError):
            counter.inc()

    def test_unknown_label_raises(self):
        counter = MetricsRegistry().counter("privshape_things_total", "Things.")
        with pytest.raises(ValueError):
            counter.inc(shard="0")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("privshape_round_index", "Round.")
        gauge.set(7)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value() == 8


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "privshape_latency_seconds", "Latency.", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        families = parse_prometheus_text(registry.render())
        family = families["privshape_latency_seconds"]
        buckets = {
            sample.labels["le"]: sample.value
            for sample in family.samples
            if sample.name.endswith("_bucket")
        }
        # Integral bounds render canonically without a trailing ".0".
        assert buckets == {"0.1": 1, "1": 2, "+Inf": 3}

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("privshape_h", "H.", buckets=(1.0, 0.5))

    def test_default_latency_buckets_are_increasing(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_metric_names_are_validated(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("not a name", "Bad.")

    def test_get_or_create_returns_same_instance(self):
        registry = MetricsRegistry()
        first = registry.counter("privshape_things_total", "Things.")
        again = registry.counter("privshape_things_total", "Things.")
        assert first is again

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("privshape_things_total", "Things.")
        with pytest.raises(ValueError):
            registry.gauge("privshape_things_total", "Things.")

    def test_labelset_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("privshape_things_total", "Things.")
        with pytest.raises(ValueError):
            registry.counter(
                "privshape_things_total", "Things.", labelnames=("shard",)
            )

    def test_render_is_valid_prometheus_text(self):
        registry = MetricsRegistry()
        registry.counter("privshape_reports_total", "Reports.").inc(42)
        registry.gauge("privshape_round_index", "Round.").set(3)
        registry.histogram(
            "privshape_batch_reports", "Batch sizes.", buckets=(10, 100)
        ).observe(55)
        families = parse_prometheus_text(registry.render())
        assert families["privshape_reports_total"].sample_values() == [42]
        assert families["privshape_round_index"].sample_values() == [3]
        assert families["privshape_batch_reports"].kind == "histogram"

    def test_render_ends_with_newline(self):
        registry = MetricsRegistry()
        registry.counter("privshape_reports_total", "Reports.").inc()
        assert registry.render().endswith("\n")


class TestSnapshots:
    def test_snapshot_render_round_trips(self):
        registry = MetricsRegistry()
        registry.counter(
            "privshape_batches_total", "Batches.", labelnames=("result",)
        ).inc(2, result="accepted")
        assert render_snapshot(registry.snapshot()) == registry.render()

    def test_merge_attaches_extra_labels_per_part(self):
        coordinator = MetricsRegistry()
        coordinator.counter("privshape_reports_total", "Reports.").inc(5)
        worker = MetricsRegistry()
        worker.counter("privshape_reports_total", "Reports.").inc(7)
        merged = merge_snapshots(
            [({}, coordinator.snapshot()), ({"worker": "0"}, worker.snapshot())]
        )
        family = parse_prometheus_text(merged)["privshape_reports_total"]
        by_labels = {
            tuple(sorted(sample.labels.items())): sample.value
            for sample in family.samples
        }
        # One un-labelled coordinator sample, one worker-labelled sample, in
        # the same family (the text format allows heterogeneous label sets).
        assert by_labels[()] == 5
        assert by_labels[(("worker", "0"),)] == 7

    def test_merge_tolerates_families_missing_from_one_part(self):
        left = MetricsRegistry()
        left.counter("privshape_only_left_total", "L.").inc()
        right = MetricsRegistry()
        right.gauge("privshape_only_right", "R.").set(1)
        merged = parse_prometheus_text(
            merge_snapshots(
                [({}, left.snapshot()), ({"worker": "1"}, right.snapshot())]
            )
        )
        assert set(merged) == {"privshape_only_left_total", "privshape_only_right"}


def test_counter_gauge_histogram_exported_types():
    registry = MetricsRegistry()
    assert isinstance(registry.counter("privshape_c_total", "C."), Counter)
    assert isinstance(registry.gauge("privshape_g", "G."), Gauge)
    assert isinstance(registry.histogram("privshape_h", "H."), Histogram)
