"""Tests for structured spans and the Chrome-trace exporter."""

import json

from repro.obs.tracing import (
    NULL_SPAN,
    Tracer,
    chrome_trace,
    current_tracer,
    install_tracer,
    trace_span,
    uninstall_tracer,
    write_chrome_trace,
)


class TestNoOpDefault:
    def test_trace_span_without_tracer_is_the_shared_null_span(self):
        assert current_tracer() is None
        assert trace_span("round.encode", round=3) is NULL_SPAN

    def test_null_span_is_a_working_context_manager(self):
        with trace_span("anything"):
            pass


class TestTracer:
    def test_spans_record_name_attrs_and_duration(self):
        tracer = Tracer()
        install_tracer(tracer)
        try:
            with trace_span("round.encode", round=2, kind="expand"):
                pass
        finally:
            uninstall_tracer()
        (span,) = tracer.spans
        assert span.name == "round.encode"
        assert span.attrs == {"round": 2, "kind": "expand"}
        assert span.duration_us >= 0
        assert span.start_us >= 0

    def test_nested_spans_all_record(self):
        tracer = Tracer()
        install_tracer(tracer)
        try:
            with trace_span("outer"):
                with trace_span("inner"):
                    pass
        finally:
            uninstall_tracer()
        assert [s.name for s in tracer.spans] == ["inner", "outer"]

    def test_uninstall_restores_no_op(self):
        install_tracer(Tracer())
        uninstall_tracer()
        assert trace_span("x") is NULL_SPAN


class TestChromeTrace:
    def _spans(self):
        tracer = Tracer()
        install_tracer(tracer)
        try:
            with trace_span("gateway.close_round", round=0):
                pass
            with trace_span("round"):
                pass
        finally:
            uninstall_tracer()
        return tracer.spans

    def test_document_shape(self):
        document = chrome_trace(self._spans(), process_name="repro-test")
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        metadata = events[0]
        assert metadata["ph"] == "M"
        assert metadata["name"] == "process_name"
        assert metadata["args"] == {"name": "repro-test"}
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 2
        for event in complete:
            assert {"name", "cat", "ts", "dur", "pid", "tid"} <= set(event)

    def test_category_is_the_span_name_prefix(self):
        document = chrome_trace(self._spans())
        cats = {e["name"]: e["cat"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert cats["gateway.close_round"] == "gateway"
        assert cats["round"] == "round"

    def test_write_chrome_trace_emits_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(path, self._spans())
        document = json.loads(path.read_text())
        assert isinstance(document["traceEvents"], list)
        assert document["traceEvents"][0]["ph"] == "M"
