"""Tests for the opt-in phase/kernel profiler."""

from repro.obs.profiling import (
    PHASE_AGGREGATE,
    PHASE_ENCODE,
    PHASES,
    PhaseProfiler,
    current_profiler,
    install_profiler,
    profile_kernel,
    profile_phase,
    uninstall_profiler,
)
from repro.obs.tracing import NULL_SPAN


def test_no_op_default():
    assert current_profiler() is None
    assert profile_phase(PHASE_ENCODE) is NULL_SPAN
    assert profile_kernel("grr.encode_batch") is NULL_SPAN


def test_phase_table_lists_all_four_phases():
    assert PHASES == ("encode", "transport", "aggregate", "estimate")


class TestPhaseProfiler:
    def _profile(self):
        profiler = PhaseProfiler()
        install_profiler(profiler)
        try:
            with profile_phase(PHASE_ENCODE, round_index=0):
                pass
            with profile_phase(PHASE_ENCODE, round_index=1):
                pass
            with profile_phase(PHASE_AGGREGATE, round_index=1):
                pass
            with profile_kernel("grr.encode_batch"):
                pass
            with profile_kernel("grr.encode_batch"):
                pass
        finally:
            uninstall_profiler()
        return profiler.report()

    def test_report_totals_by_phase(self):
        report = self._profile()
        assert set(report["phases"]) == {PHASE_ENCODE, PHASE_AGGREGATE}
        for seconds in report["phases"].values():
            assert seconds >= 0

    def test_report_attributes_phases_to_rounds(self):
        rounds = self._profile()["rounds"]
        assert [entry["round"] for entry in rounds] == [0, 1]
        assert PHASE_ENCODE in rounds[0]
        assert PHASE_AGGREGATE in rounds[1]

    def test_report_counts_kernel_calls(self):
        kernels = self._profile()["kernels"]
        assert kernels["grr.encode_batch"]["calls"] == 2
        assert kernels["grr.encode_batch"]["seconds"] >= 0

    def test_uninstall_restores_no_op(self):
        install_profiler(PhaseProfiler())
        uninstall_profiler()
        assert profile_phase(PHASE_ENCODE) is NULL_SPAN
