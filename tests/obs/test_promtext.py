"""Tests for the small in-tree Prometheus text-format parser."""

import pytest

from repro.obs.promtext import (
    CONTENT_TYPE,
    PromTextError,
    parse_prometheus_text,
)


def test_content_type_pins_exposition_version():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


def test_parses_counter_gauge_and_labels():
    text = (
        "# HELP privshape_reports_total Reports accepted.\n"
        "# TYPE privshape_reports_total counter\n"
        "privshape_reports_total 42\n"
        "# HELP privshape_queue_depth Queue depth.\n"
        "# TYPE privshape_queue_depth gauge\n"
        'privshape_queue_depth{shard="0"} 3\n'
        'privshape_queue_depth{shard="1"} 5\n'
    )
    families = parse_prometheus_text(text)
    assert families["privshape_reports_total"].kind == "counter"
    assert families["privshape_reports_total"].sample_values() == [42]
    depth = families["privshape_queue_depth"]
    assert {s.labels["shard"]: s.value for s in depth.samples} == {"0": 3, "1": 5}


def test_parses_escaped_label_values():
    text = (
        "# TYPE privshape_info gauge\n"
        'privshape_info{path="C:\\\\x \\"q\\"\\n"} 1\n'
    )
    (sample,) = parse_prometheus_text(text)["privshape_info"].samples
    assert sample.labels["path"] == 'C:\\x "q"\n'


def test_parses_special_float_values():
    text = (
        "# TYPE privshape_g gauge\n"
        "privshape_g +Inf\n"
    )
    assert parse_prometheus_text(text)["privshape_g"].sample_values() == [
        float("inf")
    ]


def test_histogram_series_attach_to_base_family():
    text = (
        "# TYPE privshape_latency_seconds histogram\n"
        'privshape_latency_seconds_bucket{le="0.1"} 1\n'
        'privshape_latency_seconds_bucket{le="+Inf"} 3\n'
        "privshape_latency_seconds_sum 2.5\n"
        "privshape_latency_seconds_count 3\n"
    )
    families = parse_prometheus_text(text)
    assert set(families) == {"privshape_latency_seconds"}
    family = families["privshape_latency_seconds"]
    assert family.kind == "histogram"
    assert family.sample_values("privshape_latency_seconds_count") == [3]


def test_rejects_unknown_metric_type():
    with pytest.raises(PromTextError):
        parse_prometheus_text("# TYPE privshape_x tachometer\n")


def test_rejects_type_after_samples():
    text = (
        "privshape_x 1\n"
        "# TYPE privshape_x counter\n"
    )
    with pytest.raises(PromTextError):
        parse_prometheus_text(text)


def test_rejects_malformed_sample_line():
    with pytest.raises(PromTextError):
        parse_prometheus_text("this is not a metric\n")


def test_rejects_non_cumulative_histogram_buckets():
    text = (
        "# TYPE privshape_h histogram\n"
        'privshape_h_bucket{le="0.1"} 5\n'
        'privshape_h_bucket{le="+Inf"} 3\n'
        "privshape_h_sum 1\n"
        "privshape_h_count 3\n"
    )
    with pytest.raises(PromTextError):
        parse_prometheus_text(text)


def test_rejects_histogram_without_inf_bucket():
    text = (
        "# TYPE privshape_h histogram\n"
        'privshape_h_bucket{le="0.1"} 1\n'
        "privshape_h_sum 1\n"
        "privshape_h_count 1\n"
    )
    with pytest.raises(PromTextError):
        parse_prometheus_text(text)


def test_ignores_comments_and_blank_lines():
    text = "\n# just a comment\n# TYPE privshape_x counter\nprivshape_x 1\n\n"
    assert parse_prometheus_text(text)["privshape_x"].sample_values() == [1]
