"""Tests for the capture() convenience wrapper."""

import json

from repro.obs import capture, current_profiler, current_tracer, trace_span
from repro.obs.profiling import PHASE_ENCODE, profile_kernel, profile_phase


def test_capture_installs_and_uninstalls():
    assert current_tracer() is None
    with capture() as cap:
        assert current_tracer() is cap.tracer
        assert current_profiler() is cap.profiler
    assert current_tracer() is None
    assert current_profiler() is None


def test_capture_summary_shape():
    with capture() as cap:
        with trace_span("round", round=0):
            with profile_phase(PHASE_ENCODE, round_index=0):
                pass
            with profile_kernel("grr.encode_batch"):
                pass
    summary = cap.summary()
    assert summary["spans"]["total"] == 1
    assert summary["spans"]["by_name"] == {"round": 1}
    assert PHASE_ENCODE in summary["phases"]
    assert summary["kernels"]["grr.encode_batch"]["calls"] == 1
    assert summary["rounds"][0]["round"] == 0


def test_nested_capture_shadows_and_restores_outer():
    with capture() as outer:
        with trace_span("outer.span"):
            pass
        with capture() as inner:
            with trace_span("inner.span"):
                pass
        assert current_tracer() is outer.tracer
        with trace_span("outer.again"):
            pass
    assert [s.name for s in inner.tracer.spans] == ["inner.span"]
    assert [s.name for s in outer.tracer.spans] == ["outer.span", "outer.again"]


def test_capture_write_chrome_trace(tmp_path):
    with capture() as cap:
        with trace_span("round"):
            pass
    path = tmp_path / "trace.json"
    cap.write_chrome_trace(path)
    document = json.loads(path.read_text())
    names = [e["name"] for e in document["traceEvents"]]
    assert "round" in names
