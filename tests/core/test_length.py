"""Tests for frequent-length estimation."""

import numpy as np
import pytest

from repro.core.length import clip_length, estimate_frequent_length
from repro.exceptions import EstimationError


class TestClipLength:
    def test_inside_range(self):
        assert clip_length(5, 1, 10) == 5

    def test_below(self):
        assert clip_length(0, 1, 10) == 1

    def test_above(self):
        assert clip_length(50, 1, 10) == 10


class TestEstimateFrequentLength:
    def test_recovers_mode_with_high_epsilon(self):
        rng = np.random.default_rng(0)
        lengths = [6] * 800 + [4] * 100 + [9] * 100
        assert estimate_frequent_length(lengths, 8.0, 1, 12, rng=rng) == 6

    def test_recovers_mode_with_moderate_epsilon(self):
        rng = np.random.default_rng(1)
        lengths = [5] * 3000 + [7] * 500 + [3] * 500
        assert estimate_frequent_length(lengths, 2.0, 1, 10, rng=rng) == 5

    def test_lengths_clipped_into_range(self):
        rng = np.random.default_rng(2)
        # All true lengths exceed the range, so the estimate must be the upper clip.
        lengths = [50] * 1000
        assert estimate_frequent_length(lengths, 6.0, 2, 8, rng=rng) == 8

    def test_single_value_range_shortcut(self):
        assert estimate_frequent_length([3, 4, 5], 1.0, 4, 4) == 4

    def test_return_counts(self):
        rng = np.random.default_rng(3)
        estimate, counts = estimate_frequent_length(
            [5] * 500, 6.0, 1, 8, rng=rng, return_counts=True
        )
        assert estimate == 5
        assert set(counts) == set(range(1, 9))
        assert counts[5] == max(counts.values())

    def test_empty_population_rejected(self):
        with pytest.raises(EstimationError):
            estimate_frequent_length([], 1.0, 1, 10)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            estimate_frequent_length([3], 1.0, 5, 2)

    def test_deterministic_given_rng(self):
        lengths = list(np.random.default_rng(4).integers(2, 8, size=400))
        a = estimate_frequent_length(lengths, 2.0, 1, 10, rng=11)
        b = estimate_frequent_length(lengths, 2.0, 1, 10, rng=11)
        assert a == b
