"""Privacy-focused tests: report-level indistinguishability bounds and accounting.

LDP guarantees are statements about the *report distribution* of a single
user; these tests check the concrete probability ratios of the deployed
mechanisms against e^ε, and that the end-to-end mechanisms never charge any
user population more than the declared user-level budget (Theorems 1 and 3).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.core.selection import candidate_scores
from repro.core.subshape import all_subshapes
from repro.ldp.exponential import ExponentialMechanism
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.ldp.unary import UnaryEncoding


class TestReportLevelGuarantees:
    @given(st.floats(min_value=0.2, max_value=8.0))
    @settings(max_examples=25)
    def test_grr_indistinguishability(self, epsilon):
        """max/min report probability ratio of GRR is exactly e^eps."""
        oracle = GeneralizedRandomizedResponse(epsilon, domain=all_subshapes("abcd"))
        assert oracle.p / oracle.q <= np.exp(epsilon) * (1 + 1e-9)

    @given(st.floats(min_value=0.2, max_value=8.0))
    @settings(max_examples=25)
    def test_oue_per_bit_indistinguishability(self, epsilon):
        """Each OUE bit's keep/flip ratio is bounded by e^eps."""
        oracle = UnaryEncoding(epsilon, domain=list(range(10)), optimized=True)
        # Probability of reporting bit=1: p for the true cell, q otherwise.
        ratio_one = oracle.p / oracle.q
        ratio_zero = (1 - oracle.q) / (1 - oracle.p)
        assert ratio_one * ratio_zero <= np.exp(epsilon) * (1 + 1e-9)

    @given(
        st.lists(st.sampled_from("abcd"), min_size=1, max_size=6),
        st.lists(st.sampled_from("abcd"), min_size=1, max_size=6),
        st.floats(min_value=0.5, max_value=6.0),
    )
    @settings(max_examples=40)
    def test_em_selection_indistinguishability(self, seq_a, seq_b, epsilon):
        """For any two user sequences, every candidate's selection probability
        ratio is bounded by e^eps (scores normalized to [0,1], sensitivity 1)."""
        candidates = [tuple("ab"), tuple("ba"), tuple("cd"), tuple("dc"), tuple("ac")]
        mechanism = ExponentialMechanism(epsilon)
        probabilities_a = mechanism.selection_probabilities(
            candidate_scores(tuple(seq_a), candidates, "sed", 4)
        )
        probabilities_b = mechanism.selection_probabilities(
            candidate_scores(tuple(seq_b), candidates, "sed", 4)
        )
        ratios = probabilities_a / probabilities_b
        assert np.all(ratios <= np.exp(epsilon) + 1e-9)
        assert np.all(ratios >= np.exp(-epsilon) - 1e-9)


class TestMechanismLevelAccounting:
    def test_privshape_each_population_charged_once(self):
        population = [tuple("abcd")] * 1500 + [tuple("dcba")] * 1500
        config = PrivShapeConfig(
            epsilon=3.0, top_k=2, alphabet_size=4, metric="sed", length_high=6
        )
        result = PrivShape(config).extract(population, rng=0)
        # Parallel composition: every population spends exactly epsilon once.
        for population_name, spent in result.accountant.per_population().items():
            assert spent == pytest.approx(3.0), population_name
        assert result.accountant.user_level_epsilon() == pytest.approx(3.0)

    def test_privshape_labeled_accounting(self):
        population = [tuple("abcd")] * 1200 + [tuple("dcba")] * 1200
        labels = [0] * 1200 + [1] * 1200
        config = PrivShapeConfig(
            epsilon=2.0, top_k=2, alphabet_size=4, metric="sed", length_high=6
        )
        result = PrivShape(config).extract_labeled(population, labels, n_classes=2, rng=1)
        assert result.accountant.is_valid()
        assert result.accountant.user_level_epsilon() == pytest.approx(2.0)
