"""Tests for the private candidate-selection helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.selection import (
    candidate_scores,
    closest_candidate_index,
    em_select_counts,
    oue_labeled_refine_counts,
    oue_refine_counts,
)

CANDIDATES = [tuple("ab"), tuple("ba"), tuple("cd"), tuple("dc")]


class TestCandidateScores:
    def test_exact_match_scores_one(self):
        scores = candidate_scores(tuple("abcd"), CANDIDATES, metric="sed", alphabet_size=4)
        assert scores[0] == pytest.approx(1.0)

    def test_scores_bounded(self):
        scores = candidate_scores(tuple("dcba"), CANDIDATES, metric="sed", alphabet_size=4)
        assert np.all(scores > 0) and np.all(scores <= 1.0)

    def test_prefix_comparison_uses_candidate_length(self):
        """A long user sequence matches a short candidate through its prefix."""
        scores = candidate_scores(tuple("abcdcb"), [tuple("ab"), tuple("dc")], "sed", 4)
        assert scores[0] == pytest.approx(1.0)
        assert scores[0] > scores[1]

    def test_all_equal_distances_give_all_ones(self):
        scores = candidate_scores(tuple("a"), [tuple("b"), tuple("c")], "sed", 4)
        assert np.allclose(scores, 1.0)

    @given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=8))
    @settings(max_examples=30)
    def test_property_scores_in_unit_interval(self, symbols):
        sequence = tuple(symbols)
        scores = candidate_scores(sequence, CANDIDATES, metric="dtw", alphabet_size=4)
        assert np.all(scores > 0.0)
        assert np.all(scores <= 1.0 + 1e-12)
        assert np.isclose(scores.max(), 1.0)


class TestEmSelectCounts:
    def test_counts_sum_to_population(self):
        sequences = [tuple("abcd")] * 500 + [tuple("dcba")] * 300
        counts = em_select_counts(sequences, CANDIDATES, 4.0, "sed", 4, rng=0)
        assert sum(counts.values()) == 800

    def test_majority_candidate_wins_with_large_epsilon(self):
        sequences = [tuple("abcd")] * 900 + [tuple("dcba")] * 100
        counts = em_select_counts(sequences, CANDIDATES, 8.0, "sed", 4, rng=1)
        assert max(counts, key=counts.get) == tuple("ab")

    def test_empty_candidates(self):
        assert em_select_counts([tuple("ab")], [], 1.0, "sed", 4) == {}

    def test_empty_population(self):
        counts = em_select_counts([], CANDIDATES, 1.0, "sed", 4, rng=2)
        assert all(v == 0 for v in counts.values())

    def test_deterministic_given_rng(self):
        sequences = [tuple("abcd")] * 200
        a = em_select_counts(sequences, CANDIDATES, 2.0, "sed", 4, rng=5)
        b = em_select_counts(sequences, CANDIDATES, 2.0, "sed", 4, rng=5)
        assert a == b


class TestClosestCandidate:
    def test_exact_match(self):
        assert closest_candidate_index(tuple("cd"), CANDIDATES, "sed", 4) == 2

    def test_nearest_by_edit_distance(self):
        assert closest_candidate_index(tuple("ad"), CANDIDATES, "sed", 4) in (0, 2)


class TestOueRefineCounts:
    def test_recovers_relative_frequencies(self):
        sequences = [tuple("ab")] * 3000 + [tuple("cd")] * 1000
        counts = oue_refine_counts(sequences, CANDIDATES, 4.0, "sed", 4, rng=0)
        assert counts[tuple("ab")] > counts[tuple("cd")] > counts[tuple("ba")]
        assert counts[tuple("ab")] == pytest.approx(3000, rel=0.15)

    def test_single_candidate_shortcut(self):
        counts = oue_refine_counts([tuple("ab")] * 10, [tuple("ab")], 1.0, "sed", 4, rng=1)
        assert counts[tuple("ab")] == 10.0

    def test_empty_population(self):
        counts = oue_refine_counts([], CANDIDATES, 1.0, "sed", 4)
        assert all(v == 0.0 for v in counts.values())


class TestOueLabeledRefineCounts:
    def test_per_class_counts_recover_structure(self):
        sequences = [tuple("ab")] * 2000 + [tuple("cd")] * 2000
        labels = [0] * 2000 + [1] * 2000
        per_class = oue_labeled_refine_counts(
            sequences, labels, CANDIDATES, n_classes=2, epsilon=4.0,
            metric="sed", alphabet_size=4, rng=0,
        )
        assert per_class[0][tuple("ab")] > per_class[0][tuple("cd")]
        assert per_class[1][tuple("cd")] > per_class[1][tuple("ab")]

    def test_output_structure(self):
        per_class = oue_labeled_refine_counts(
            [tuple("ab")] * 50, [0] * 50, CANDIDATES, n_classes=3, epsilon=2.0,
            metric="sed", alphabet_size=4, rng=1,
        )
        assert set(per_class) == {0, 1, 2}
        assert all(set(counts) == set(CANDIDATES) for counts in per_class.values())

    def test_empty_population(self):
        per_class = oue_labeled_refine_counts(
            [], [], CANDIDATES, n_classes=2, epsilon=1.0, metric="sed", alphabet_size=4
        )
        assert all(v == 0.0 for counts in per_class.values() for v in counts.values())
