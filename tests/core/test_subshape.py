"""Tests for frequent sub-shape estimation."""

import pytest

from repro.core.subshape import (
    all_subshapes,
    estimate_frequent_subshapes,
    user_subshape_report,
)
from repro.exceptions import EstimationError
from repro.ldp.grr import GeneralizedRandomizedResponse


class TestAllSubshapes:
    def test_count_is_t_times_t_minus_1(self):
        assert len(all_subshapes("abcd")) == 12
        assert len(all_subshapes("abc")) == 6

    def test_no_identical_pairs(self):
        assert all(a != b for a, b in all_subshapes("abcde"))

    def test_sorted_and_unique(self):
        pairs = all_subshapes("abc")
        assert pairs == sorted(set(pairs))


class TestUserSubshapeReport:
    def test_report_structure(self):
        oracle = GeneralizedRandomizedResponse(4.0, domain=all_subshapes("abcd"))
        level, pair = user_subshape_report(("a", "b", "c"), 4, oracle, rng=0)
        assert 1 <= level <= 3
        assert pair in oracle.domain

    def test_short_sequence_padded(self):
        oracle = GeneralizedRandomizedResponse(4.0, domain=all_subshapes("abcd"))
        # A single-symbol sequence has no real sub-shape; the report is still valid.
        level, pair = user_subshape_report(("a",), 5, oracle, rng=1)
        assert 1 <= level <= 4
        assert pair in oracle.domain

    def test_length_one_rejected(self):
        oracle = GeneralizedRandomizedResponse(4.0, domain=all_subshapes("abcd"))
        with pytest.raises(EstimationError):
            user_subshape_report(("a", "b"), 1, oracle, rng=0)


class TestEstimateFrequentSubshapes:
    def _population(self, n=4000):
        """Half the users hold 'abcd', a third hold 'dcba', the rest 'acdb'."""
        return (
            [tuple("abcd")] * (n // 2)
            + [tuple("dcba")] * (n // 3)
            + [tuple("acdb")] * (n - n // 2 - n // 3)
        )

    def test_recovers_true_subshapes_per_level(self):
        top = estimate_frequent_subshapes(
            self._population(), estimated_length=4, epsilon=6.0, alphabet="abcd", keep=3, rng=0
        )
        assert set(top) == {1, 2, 3}
        assert ("a", "b") in top[1]
        assert ("b", "c") in top[2]
        assert ("c", "d") in top[3]

    def test_keep_limits_candidates(self):
        top = estimate_frequent_subshapes(
            self._population(), estimated_length=4, epsilon=4.0, alphabet="abcd", keep=2, rng=1
        )
        assert all(len(pairs) <= 2 for pairs in top.values())

    def test_return_counts(self):
        top, counts = estimate_frequent_subshapes(
            self._population(2000),
            estimated_length=4,
            epsilon=4.0,
            alphabet="abcd",
            keep=4,
            rng=2,
            return_counts=True,
        )
        assert set(counts) == set(top)
        assert all(len(c) == 12 for c in counts.values())

    def test_single_level_sequences(self):
        result = estimate_frequent_subshapes(
            [("a",)] * 100, estimated_length=1, epsilon=1.0, alphabet="abcd", keep=3, rng=3
        )
        assert result == {}

    def test_empty_population_rejected(self):
        with pytest.raises(EstimationError):
            estimate_frequent_subshapes([], 4, 1.0, "abcd", 3)

    def test_levels_with_no_reports_keep_everything(self):
        # With only a couple of users, some of the 5 levels get no report.
        top = estimate_frequent_subshapes(
            [tuple("abcdef")] * 2, estimated_length=6, epsilon=1.0, alphabet="abcdef", keep=3, rng=4
        )
        assert set(top) == {1, 2, 3, 4, 5}
        assert all(len(pairs) >= 3 for pairs in top.values())
