"""Tests for post-processing: shape clustering, de-duplication, class assignment."""

import pytest

from repro.core.refinement import (
    assign_candidates_to_classes,
    cluster_shapes,
    deduplicate_shapes,
)


class TestClusterShapes:
    def test_groups_similar_shapes(self):
        shapes = [tuple("abcd"), tuple("abcc"), tuple("dcba"), tuple("dcbb")]
        labels = cluster_shapes(shapes, n_clusters=2, metric="sed")
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_number_of_clusters(self):
        shapes = [tuple("ab"), tuple("cd"), tuple("ba"), tuple("dc"), tuple("ac")]
        labels = cluster_shapes(shapes, n_clusters=3, metric="sed")
        assert len(set(labels)) == 3

    def test_fewer_shapes_than_clusters(self):
        labels = cluster_shapes([tuple("ab")], n_clusters=5)
        assert labels == [0]

    def test_empty(self):
        assert cluster_shapes([], n_clusters=3) == []


class TestDeduplicateShapes:
    def test_keeps_most_frequent_per_cluster(self):
        shapes = [tuple("abcd"), tuple("abcc"), tuple("dcba")]
        frequencies = [10.0, 50.0, 30.0]
        selected, counts = deduplicate_shapes(shapes, frequencies, k=2, metric="sed")
        assert tuple("abcc") in selected
        assert tuple("dcba") in selected
        assert tuple("abcd") not in selected
        assert counts == sorted(counts, reverse=True)

    def test_k_larger_than_groups(self):
        shapes = [tuple("ab"), tuple("ba")]
        selected, _ = deduplicate_shapes(shapes, [1.0, 2.0], k=5, metric="sed")
        assert len(selected) == 2

    def test_empty(self):
        assert deduplicate_shapes([], [], k=3) == ([], [])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            deduplicate_shapes([tuple("ab")], [1.0, 2.0], k=1)


class TestAssignCandidatesToClasses:
    def test_each_candidate_goes_to_dominant_class(self):
        per_class = {
            0: {tuple("ab"): 100.0, tuple("cd"): 5.0},
            1: {tuple("ab"): 10.0, tuple("cd"): 90.0},
        }
        shapes, freqs = assign_candidates_to_classes(per_class, top_k=2)
        assert shapes[0] == [tuple("ab")]
        assert shapes[1] == [tuple("cd")]
        assert freqs[0] == [100.0]

    def test_class_without_candidates_falls_back(self):
        per_class = {
            0: {tuple("ab"): 100.0, tuple("cd"): 80.0},
            1: {tuple("ab"): 10.0, tuple("cd"): 20.0},
        }
        shapes, _ = assign_candidates_to_classes(per_class, top_k=1)
        # Both candidates belong to class 0; class 1 still gets its best fallback.
        assert shapes[0] and shapes[1]
        assert shapes[1] == [tuple("cd")]

    def test_top_k_limits_output(self):
        per_class = {
            0: {tuple("ab"): 9.0, tuple("ac"): 8.0, tuple("ad"): 7.0},
            1: {tuple("ab"): 1.0, tuple("ac"): 1.0, tuple("ad"): 1.0},
        }
        shapes, _ = assign_candidates_to_classes(per_class, top_k=2)
        assert len(shapes[0]) == 2

    def test_empty_counts(self):
        shapes, freqs = assign_candidates_to_classes({0: {}, 1: {}}, top_k=3)
        assert shapes == {0: [], 1: []}
        assert freqs == {0: [], 1: []}
