"""Tests for the PrivShape mechanism (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.config import PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.exceptions import EmptyDatasetError


def _population(n=6000, seed=0):
    """Population dominated by 'abcd' and 'dcba' plus random-walk noise shapes."""
    rng = np.random.default_rng(seed)
    sequences = [tuple("abcd")] * (n // 2) + [tuple("dcba")] * (n // 3)
    while len(sequences) < n:
        length = int(rng.integers(3, 6))
        symbols = []
        for _ in range(length):
            choices = [s for s in "abcd" if not symbols or s != symbols[-1]]
            symbols.append(choices[rng.integers(0, len(choices))])
        sequences.append(tuple(symbols))
    return sequences


def _config(**overrides) -> PrivShapeConfig:
    defaults = dict(
        epsilon=6.0,
        top_k=2,
        alphabet_size=4,
        metric="sed",
        length_low=1,
        length_high=6,
        candidate_factor=3,
    )
    defaults.update(overrides)
    return PrivShapeConfig(**defaults)


class TestPrivShapeExtract:
    def test_returns_at_most_top_k_shapes(self):
        result = PrivShape(_config()).extract(_population(), rng=0)
        assert 1 <= len(result.shapes) <= 2

    def test_recovers_dominant_shapes(self):
        result = PrivShape(_config(epsilon=8.0)).extract(_population(n=8000, seed=1), rng=1)
        assert result.estimated_length == 4
        assert tuple("abcd") in result.shapes
        assert tuple("dcba") in result.shapes

    def test_subshape_candidates_recorded(self):
        result = PrivShape(_config()).extract(_population(), rng=2)
        assert set(result.subshape_candidates) == {1, 2, 3}

    def test_candidate_domain_bounded_by_ck_expansion(self):
        """Theorem 4: every level's EM domain stays within c*k*(t-1)."""
        config = _config()
        result = PrivShape(config).extract(_population(), rng=3)
        bound = config.candidate_budget * (config.alphabet_size - 1)
        assert all(size <= bound for size in result.trie.domain_sizes().values())

    def test_privacy_accounting_is_valid(self):
        config = _config(epsilon=1.5)
        result = PrivShape(config).extract(_population(n=3000), rng=4)
        assert result.accountant.is_valid()
        assert result.accountant.user_level_epsilon() == pytest.approx(1.5)

    def test_postprocess_returns_distinct_shapes(self):
        result = PrivShape(_config(top_k=3)).extract(_population(), rng=5)
        assert len(set(result.shapes)) == len(result.shapes)

    def test_refinement_can_be_disabled(self):
        config = _config(refinement=False)
        result = PrivShape(config).extract(_population(n=3000, seed=6), rng=6)
        assert result.shapes
        populations = result.accountant.per_population()
        assert "Pd" not in populations

    def test_empty_population_rejected(self):
        with pytest.raises(EmptyDatasetError):
            PrivShape(_config()).extract([])

    def test_reproducible_given_seed(self):
        population = _population(n=3000, seed=7)
        a = PrivShape(_config()).extract(population, rng=99)
        b = PrivShape(_config()).extract(population, rng=99)
        assert a.shapes == b.shapes
        assert a.frequencies == b.frequencies

    def test_single_symbol_population(self):
        """Sequences of length 1 are handled (no sub-shapes, trie height 1)."""
        population = [("a",)] * 500 + [("b",)] * 200
        config = _config(length_high=3, top_k=1)
        result = PrivShape(config).extract(population, rng=8)
        assert result.estimated_length == 1
        assert result.shapes[0] == ("a",)


class TestPrivShapeExtractLabeled:
    def test_per_class_shapes_recovered(self):
        population = [tuple("abcd")] * 2500 + [tuple("dcba")] * 2500
        labels = [0] * 2500 + [1] * 2500
        result = PrivShape(_config(epsilon=8.0)).extract_labeled(
            population, labels, n_classes=2, rng=0
        )
        assert result.shapes_by_class[0]
        assert result.shapes_by_class[1]
        assert result.shapes_by_class[0][0] != result.shapes_by_class[1][0]

    def test_classes_inferred_from_labels(self):
        population = [tuple("abcd")] * 1000 + [tuple("dcba")] * 1000
        labels = [0] * 1000 + [1] * 1000
        result = PrivShape(_config()).extract_labeled(population, labels, rng=1)
        assert set(result.shapes_by_class) == {0, 1}

    def test_mismatched_labels_rejected(self):
        with pytest.raises(ValueError):
            PrivShape(_config()).extract_labeled([tuple("ab")], [0, 1])

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            PrivShape(_config()).extract_labeled([], [])

    def test_accounting_valid_for_labeled_run(self):
        population = [tuple("abcd")] * 1500 + [tuple("dcba")] * 1500
        labels = [0] * 1500 + [1] * 1500
        result = PrivShape(_config(epsilon=2.0)).extract_labeled(
            population, labels, n_classes=2, rng=2
        )
        assert result.accountant.is_valid()
