"""Tests for the Without-SAX raw-value discretizer."""

import numpy as np
import pytest

from repro.core.ablation import RawValueDiscretizer


class TestRawValueDiscretizer:
    def test_paper_bin_count(self):
        """0.33-wide bins clipped at ±0.99 yield eight segments (Section V-J)."""
        discretizer = RawValueDiscretizer()
        assert discretizer.alphabet_size == 8

    def test_symbols_within_alphabet(self):
        discretizer = RawValueDiscretizer()
        rng = np.random.default_rng(0)
        shape = discretizer.transform(rng.normal(size=200))
        assert set(shape) <= set(discretizer.alphabet)

    def test_compression_removes_repeats(self):
        discretizer = RawValueDiscretizer(compress=True)
        shape = discretizer.transform(np.concatenate([np.zeros(50), np.ones(50) * 3]))
        assert all(shape[i] != shape[i + 1] for i in range(len(shape) - 1))

    def test_no_compression_keeps_length(self):
        discretizer = RawValueDiscretizer(compress=False, normalize=False)
        shape = discretizer.transform(np.zeros(40))
        assert len(shape) == 40

    def test_stride_subsamples(self):
        discretizer = RawValueDiscretizer(compress=False, stride=4)
        shape = discretizer.transform(np.random.default_rng(1).normal(size=40))
        assert len(shape) == 10

    def test_monotone_series_monotone_symbols(self):
        discretizer = RawValueDiscretizer()
        shape = discretizer.transform(np.linspace(-3, 3, 300))
        assert list(shape) == sorted(shape)

    def test_transform_dataset(self):
        discretizer = RawValueDiscretizer()
        rng = np.random.default_rng(2)
        shapes = discretizer.transform_dataset([rng.normal(size=50) for _ in range(4)])
        assert len(shapes) == 4

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            RawValueDiscretizer(bin_width=0.0)
        with pytest.raises(ValueError):
            RawValueDiscretizer(clip=-1.0)
        with pytest.raises(ValueError):
            RawValueDiscretizer(bin_width=0.01)
