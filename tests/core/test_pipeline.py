"""Integration tests for the end-to-end task pipelines.

These use small populations (hundreds to a couple thousand users) so they run
quickly; the statistical claims they verify are therefore loose (e.g. "ARI is
a valid number", "PrivShape beats PatternLDP by a margin") rather than the
paper's exact values, which the benchmark harness reproduces at full scale.
"""

import pytest

from repro.core.ablation import RawValueDiscretizer
from repro.core.pipeline import (
    ClassificationTaskResult,
    ClusteringTaskResult,
    ground_truth_shapes,
    run_classification_task,
    run_clustering_task,
)
from repro.datasets import symbols_like, trace_like
from repro.exceptions import ConfigurationError
from repro.sax.compressive import CompressiveSAX


@pytest.fixture(scope="module")
def symbols_dataset():
    return symbols_like(n_instances=3000, rng=21)


@pytest.fixture(scope="module")
def trace_dataset():
    return trace_like(n_instances=3000, rng=22)


class TestGroundTruthShapes:
    def test_one_shape_per_class(self, trace_dataset):
        transformer = CompressiveSAX(alphabet_size=4, segment_length=10)
        truth = ground_truth_shapes(trace_dataset, transformer)
        assert set(truth) == set(range(trace_dataset.n_classes))
        assert all(len(shape) >= 1 for shape in truth.values())


class TestClusteringPipeline:
    def test_privshape_result_structure(self, symbols_dataset):
        result = run_clustering_task(
            symbols_dataset, mechanism="privshape", epsilon=4.0, evaluation_size=200, rng=0
        )
        assert isinstance(result, ClusteringTaskResult)
        assert -1.0 <= result.ari <= 1.0
        assert result.shapes
        assert set(result.shape_measures) == {"dtw", "sed", "euclidean"}
        assert result.elapsed_seconds > 0
        assert result.extraction is not None
        assert result.extraction.accountant.is_valid()

    def test_baseline_runs(self, symbols_dataset):
        result = run_clustering_task(
            symbols_dataset, mechanism="baseline", epsilon=4.0, evaluation_size=200, rng=1
        )
        assert -1.0 <= result.ari <= 1.0

    def test_patternldp_runs(self, symbols_dataset):
        result = run_clustering_task(
            symbols_dataset, mechanism="patternldp", epsilon=4.0, evaluation_size=150, rng=2
        )
        assert -1.0 <= result.ari <= 1.0
        assert result.extraction is None

    def test_unknown_mechanism_rejected(self, symbols_dataset):
        with pytest.raises(ConfigurationError):
            run_clustering_task(symbols_dataset, mechanism="magic")

    def test_without_sax_transformer(self, trace_dataset):
        transformer = RawValueDiscretizer(stride=4)
        result = run_clustering_task(
            trace_dataset,
            mechanism="privshape",
            epsilon=4.0,
            transformer=transformer,
            evaluation_size=150,
            rng=3,
        )
        assert -1.0 <= result.ari <= 1.0

    def test_no_compression_variant(self, trace_dataset):
        result = run_clustering_task(
            trace_dataset,
            mechanism="privshape",
            epsilon=4.0,
            alphabet_size=4,
            segment_length=10,
            compress=False,
            length_high=12,
            evaluation_size=150,
            rng=4,
        )
        assert -1.0 <= result.ari <= 1.0


class TestClassificationPipeline:
    def test_privshape_result_structure(self, trace_dataset):
        result = run_classification_task(
            trace_dataset, mechanism="privshape", epsilon=4.0, evaluation_size=200, rng=0
        )
        assert isinstance(result, ClassificationTaskResult)
        assert 0.0 <= result.accuracy <= 1.0
        assert set(result.shapes_by_class) == {0, 1, 2}
        assert result.extraction is not None
        assert result.extraction.accountant.is_valid()

    def test_baseline_runs(self, trace_dataset):
        result = run_classification_task(
            trace_dataset, mechanism="baseline", epsilon=4.0, evaluation_size=150, rng=1
        )
        assert 0.0 <= result.accuracy <= 1.0

    def test_patternldp_runs(self, trace_dataset):
        result = run_classification_task(
            trace_dataset,
            mechanism="patternldp",
            epsilon=4.0,
            evaluation_size=100,
            patternldp_train_size=300,
            forest_size=5,
            rng=2,
        )
        assert 0.0 <= result.accuracy <= 1.0

    def test_privshape_beats_chance_at_large_epsilon(self, trace_dataset):
        result = run_classification_task(
            trace_dataset, mechanism="privshape", epsilon=8.0, evaluation_size=300, rng=3
        )
        assert result.accuracy > 1.0 / trace_dataset.n_classes + 0.1

    def test_unknown_mechanism_rejected(self, trace_dataset):
        with pytest.raises(ConfigurationError):
            run_classification_task(trace_dataset, mechanism="magic")
