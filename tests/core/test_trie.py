"""Tests for the candidate-shape trie."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trie import ShapeTrie, TrieNode
from repro.exceptions import DomainError


@pytest.fixture
def trie() -> ShapeTrie:
    return ShapeTrie(alphabet=list("abcd"))


class TestConstruction:
    def test_root_exists(self, trie):
        assert () in trie
        assert trie.root.level == 0

    def test_small_alphabet_rejected(self):
        with pytest.raises(DomainError):
            ShapeTrie(alphabet=["a"])

    def test_duplicate_alphabet_rejected(self):
        with pytest.raises(DomainError):
            ShapeTrie(alphabet=["a", "a", "b"])


class TestAddAndLookup:
    def test_add_creates_ancestors(self, trie):
        trie.add(("a", "b", "c"))
        assert ("a",) in trie
        assert ("a", "b") in trie
        assert ("a", "b", "c") in trie

    def test_add_unknown_symbol_rejected(self, trie):
        with pytest.raises(DomainError):
            trie.add(("a", "z"))

    def test_add_consecutive_repeat_rejected(self, trie):
        with pytest.raises(DomainError):
            trie.add(("a", "a"))

    def test_frequency_set_and_increment(self, trie):
        trie.add(("a", "b"), frequency=5.0)
        trie.increment(("a", "b"), 2.0)
        assert trie.node(("a", "b")).frequency == pytest.approx(7.0)

    def test_set_frequency_creates_node(self, trie):
        trie.set_frequency(("c", "d"), 3.0)
        assert trie.node(("c", "d")).frequency == 3.0

    def test_node_properties(self):
        node = TrieNode(shape=("a", "b"))
        assert node.level == 2
        assert node.last_symbol == "b"
        assert TrieNode(shape=()).last_symbol is None


class TestLevels:
    def test_nodes_at_level(self, trie):
        trie.add(("a", "b"))
        trie.add(("a", "c"))
        trie.add(("b", "c"))
        assert len(trie.nodes_at_level(2)) == 3
        assert len(trie.nodes_at_level(1)) == 2  # 'a' and 'b' ancestors

    def test_height(self, trie):
        assert trie.height == 0
        trie.add(("a", "b", "c", "d"))
        assert trie.height == 4

    def test_children(self, trie):
        trie.add(("a", "b"))
        trie.add(("a", "c"))
        children = trie.children(("a",))
        assert {node.shape for node in children} == {("a", "b"), ("a", "c")}

    def test_domain_sizes(self, trie):
        trie.add(("a", "b"))
        trie.add(("c",))
        sizes = trie.domain_sizes()
        assert sizes[1] == 2
        assert sizes[2] == 1


class TestExpansion:
    def test_root_expansion_uses_full_alphabet(self, trie):
        children = trie.expand([()])
        assert children == [("a",), ("b",), ("c",), ("d",)]

    def test_expansion_excludes_last_symbol(self, trie):
        children = trie.expand([("a",)])
        assert ("a", "a") not in children
        assert len(children) == 3

    def test_expansion_with_allowed_subshapes(self, trie):
        trie.add(("a",))
        children = trie.expand([("a",)], allowed_subshapes=[("a", "c"), ("b", "d")])
        assert children == [("a", "c")]

    def test_expansion_multiple_parents(self, trie):
        children = trie.expand([("a",), ("b",)], allowed_subshapes=[("a", "b"), ("b", "a")])
        assert set(children) == {("a", "b"), ("b", "a")}

    @given(st.lists(st.sampled_from("abcd"), min_size=1, max_size=6))
    @settings(max_examples=30)
    def test_property_children_never_repeat_last_symbol(self, symbols):
        # Build a valid (compressed) prefix from arbitrary symbols.
        prefix = []
        for symbol in symbols:
            if not prefix or prefix[-1] != symbol:
                prefix.append(symbol)
        trie = ShapeTrie(alphabet=list("abcd"))
        trie.add(tuple(prefix))
        children = trie.expand([tuple(prefix)])
        assert all(child[-1] != prefix[-1] for child in children)
        assert all(child[: len(prefix)] == tuple(prefix) for child in children)


class TestPruning:
    def test_prune_below_threshold(self, trie):
        trie.set_frequency(("a",), 10)
        trie.set_frequency(("b",), 1)
        survivors = trie.prune_below_threshold(1, threshold=5)
        assert survivors == [("a",)]
        assert trie.node(("b",)).pruned

    def test_prune_to_top(self, trie):
        for symbol, frequency in zip("abcd", [5, 9, 1, 7]):
            trie.set_frequency((symbol,), frequency)
        survivors = trie.prune_to_top(1, keep=2)
        assert survivors == [("b",), ("d",)]
        assert trie.domain_size_at_level(1) == 2

    def test_prune_to_top_invalid_keep(self, trie):
        with pytest.raises(ValueError):
            trie.prune_to_top(1, keep=0)

    def test_pruned_nodes_can_be_revived(self, trie):
        trie.set_frequency(("a",), 1)
        trie.set_frequency(("b",), 10)
        trie.prune_to_top(1, keep=1)
        assert trie.node(("a",)).pruned
        trie.prune_to_top(1, keep=2)
        assert not trie.node(("a",)).pruned

    def test_top_shapes_ordering(self, trie):
        trie.set_frequency(("a", "b"), 3)
        trie.set_frequency(("a", "c"), 8)
        trie.set_frequency(("b", "a"), 5)
        top = trie.top_shapes(2, k=2)
        assert top[0][0] == ("a", "c")
        assert top[1][0] == ("b", "a")
