"""Tests for the baseline mechanism (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.baseline import BaselineMechanism
from repro.core.config import BaselineConfig
from repro.exceptions import EmptyDatasetError


def _population(n=4000, seed=0):
    """A synthetic population dominated by two 4-symbol shapes plus noise."""
    rng = np.random.default_rng(seed)
    sequences = [tuple("abcd")] * (n // 2) + [tuple("dcba")] * (n // 3)
    while len(sequences) < n:
        length = int(rng.integers(3, 6))
        symbols = []
        for _ in range(length):
            choices = [s for s in "abcd" if not symbols or s != symbols[-1]]
            symbols.append(choices[rng.integers(0, len(choices))])
        sequences.append(tuple(symbols))
    return sequences


def _config(**overrides) -> BaselineConfig:
    defaults = dict(
        epsilon=6.0,
        top_k=2,
        alphabet_size=4,
        metric="sed",
        length_low=1,
        length_high=6,
    )
    defaults.update(overrides)
    return BaselineConfig(**defaults)


class TestBaselineExtract:
    def test_returns_top_k_shapes(self):
        mechanism = BaselineMechanism(_config())
        result = mechanism.extract(_population(), rng=0)
        assert len(result.shapes) <= 2
        assert len(result.shapes) == len(result.frequencies)

    def test_recovers_dominant_shape_with_large_epsilon(self):
        mechanism = BaselineMechanism(_config(epsilon=8.0))
        result = mechanism.extract(_population(n=6000, seed=1), rng=1)
        assert result.estimated_length == 4
        assert tuple("abcd") in result.shapes or tuple("dcba") in result.shapes

    def test_shapes_have_leaf_length(self):
        mechanism = BaselineMechanism(_config())
        result = mechanism.extract(_population(), rng=2)
        assert all(len(shape) == result.trie.height for shape in result.shapes)

    def test_privacy_accounting_is_valid(self):
        mechanism = BaselineMechanism(_config(epsilon=2.0))
        result = mechanism.extract(_population(n=2000), rng=3)
        assert result.accountant.is_valid()
        assert result.accountant.user_level_epsilon() == pytest.approx(2.0)

    def test_empty_population_rejected(self):
        with pytest.raises(EmptyDatasetError):
            BaselineMechanism(_config()).extract([])

    def test_reproducible_given_seed(self):
        population = _population(n=2000, seed=4)
        a = BaselineMechanism(_config()).extract(population, rng=42)
        b = BaselineMechanism(_config()).extract(population, rng=42)
        assert a.shapes == b.shapes

    def test_frequencies_sorted_descending(self):
        result = BaselineMechanism(_config(top_k=4)).extract(_population(), rng=5)
        assert result.frequencies == sorted(result.frequencies, reverse=True)

    def test_explicit_threshold_used(self):
        mechanism = BaselineMechanism(_config(prune_threshold=0.0))
        result = mechanism.extract(_population(n=1500, seed=6), rng=6)
        assert result.shapes  # nothing pruned, extraction still completes

    def test_max_candidates_caps_domain(self):
        mechanism = BaselineMechanism(_config(max_candidates=8))
        result = mechanism.extract(_population(n=1500, seed=7), rng=7)
        assert all(size <= 8 * 3 for size in result.trie.domain_sizes().values())


class TestBaselineExtractLabeled:
    def test_per_class_shapes(self):
        population = [tuple("abcd")] * 1500 + [tuple("dcba")] * 1500
        labels = [0] * 1500 + [1] * 1500
        mechanism = BaselineMechanism(_config(epsilon=8.0, top_k=2))
        result = mechanism.extract_labeled(population, labels, n_classes=2, rng=0)
        assert set(result.shapes_by_class) == {0, 1}
        assert all(result.shapes_by_class[label] for label in (0, 1))

    def test_label_mismatch_rejected(self):
        mechanism = BaselineMechanism(_config())
        with pytest.raises(ValueError):
            mechanism.extract_labeled([tuple("ab")], [0, 1])
