"""Tests for mechanism configuration objects."""

import pytest

from repro.core.config import BaselineConfig, MechanismConfig, PrivShapeConfig
from repro.exceptions import ConfigurationError, PrivacyBudgetError


class TestMechanismConfig:
    def test_defaults_valid(self):
        config = MechanismConfig()
        assert config.alphabet == ["a", "b", "c", "d"]

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            MechanismConfig(epsilon=-1)

    def test_invalid_length_range(self):
        with pytest.raises(ConfigurationError):
            MechanismConfig(length_low=5, length_high=2)

    def test_alphabet_matches_size(self):
        assert PrivShapeConfig(alphabet_size=6).alphabet == list("abcdef")


class TestBaselineConfig:
    def test_defaults(self):
        config = BaselineConfig()
        assert config.prune_threshold is None
        assert config.max_candidates > 0

    def test_invalid_population_fraction(self):
        with pytest.raises(ConfigurationError):
            BaselineConfig(length_population_fraction=0.0)
        with pytest.raises(ConfigurationError):
            BaselineConfig(length_population_fraction=1.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            BaselineConfig(prune_threshold=-1)

    def test_explicit_threshold_kept(self):
        assert BaselineConfig(prune_threshold=100).prune_threshold == 100


class TestPrivShapeConfig:
    def test_candidate_budget(self):
        config = PrivShapeConfig(top_k=4, candidate_factor=3)
        assert config.candidate_budget == 12

    def test_default_population_fractions_match_paper(self):
        config = PrivShapeConfig()
        assert config.population_fractions == (0.02, 0.08, 0.7, 0.2)

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            PrivShapeConfig(population_fractions=(0.1, 0.1, 0.1, 0.1))

    def test_fractions_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PrivShapeConfig(population_fractions=(0.0, 0.1, 0.7, 0.2))

    def test_fractions_wrong_arity(self):
        with pytest.raises(ConfigurationError):
            PrivShapeConfig(population_fractions=(0.5, 0.5))

    def test_flags_default_on(self):
        config = PrivShapeConfig()
        assert config.refinement and config.postprocess
