"""Tests for the result containers."""


from repro.core.results import LabeledShapeExtractionResult, ShapeExtractionResult
from repro.core.trie import ShapeTrie
from repro.ldp.accounting import PrivacyAccountant


def _result() -> ShapeExtractionResult:
    trie = ShapeTrie(alphabet=list("abcd"))
    trie.add(("a", "b"), frequency=5)
    accountant = PrivacyAccountant(target_epsilon=1.0)
    return ShapeExtractionResult(
        shapes=[("a", "b"), ("c", "d")],
        frequencies=[5.0, 3.0],
        estimated_length=2,
        trie=trie,
        accountant=accountant,
    )


class TestShapeExtractionResult:
    def test_as_strings(self):
        assert _result().as_strings() == ["ab", "cd"]

    def test_top(self):
        assert _result().top(1) == [("a", "b")]

    def test_shapes_coerced_to_tuples(self):
        result = _result()
        assert all(isinstance(shape, tuple) for shape in result.shapes)

    def test_frequencies_are_floats(self):
        assert all(isinstance(f, float) for f in _result().frequencies)


class TestLabeledShapeExtractionResult:
    def _labeled(self) -> LabeledShapeExtractionResult:
        trie = ShapeTrie(alphabet=list("abcd"))
        return LabeledShapeExtractionResult(
            shapes_by_class={0: [("a", "b")], 1: [("c", "d"), ("d", "a")]},
            frequencies_by_class={0: [4.0], 1: [9.0, 2.0]},
            estimated_length=2,
            trie=trie,
            accountant=PrivacyAccountant(target_epsilon=1.0),
        )

    def test_flat_shapes(self):
        assert self._labeled().flat_shapes() == [("a", "b"), ("c", "d"), ("d", "a")]

    def test_representative_shapes(self):
        representatives = self._labeled().representative_shapes()
        assert representatives == {0: ("a", "b"), 1: ("c", "d")}

    def test_as_strings(self):
        assert self._labeled().as_strings() == {0: ["ab"], 1: ["cd", "da"]}

    def test_labels_coerced_to_int(self):
        result = LabeledShapeExtractionResult(
            shapes_by_class={"0": [("a",)]},
            frequencies_by_class={"0": [1.0]},
            estimated_length=1,
            trie=ShapeTrie(alphabet=list("ab")),
            accountant=PrivacyAccountant(target_epsilon=1.0),
        )
        assert 0 in result.shapes_by_class
