"""Tests for the top-level package API surface."""

import repro


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_main_classes_exposed(self):
        assert repro.PrivShape is not None
        assert repro.PrivShapeConfig is not None
        assert repro.BaselineMechanism is not None
        assert repro.PatternLDP is not None
        assert repro.CompressiveSAX is not None

    def test_docstring_example_runs(self):
        """The module docstring's quickstart snippet must actually work."""
        dataset = repro.symbols_like(n_instances=400, rng=0)
        transformer = repro.CompressiveSAX(alphabet_size=6, segment_length=25)
        sequences = transformer.transform_dataset(dataset.series)
        mechanism = repro.PrivShape(
            repro.PrivShapeConfig(epsilon=4.0, top_k=6, alphabet_size=6, length_high=15)
        )
        result = mechanism.extract(sequences, rng=0)
        assert len(result.shapes) <= 6
        assert result.accountant.is_valid()

    def test_task_pipelines_exposed(self):
        assert callable(repro.run_clustering_task)
        assert callable(repro.run_classification_task)
