"""Tests for SUE / OUE unary encoding."""

import numpy as np
import pytest

from repro.ldp.unary import UnaryEncoding


class TestConstruction:
    def test_oue_probabilities(self):
        oracle = UnaryEncoding(1.0, domain=list("abcd"), optimized=True)
        assert oracle.p == pytest.approx(0.5)
        assert oracle.q == pytest.approx(1.0 / (np.e + 1.0))

    def test_sue_probabilities_symmetric(self):
        oracle = UnaryEncoding(2.0, domain=list("abcd"), optimized=False)
        assert oracle.p + oracle.q == pytest.approx(1.0)
        assert oracle.p / oracle.q == pytest.approx(np.exp(1.0))


class TestPerturb:
    def test_report_shape_and_dtype(self):
        oracle = UnaryEncoding(1.0, domain=list("abcde"))
        report = oracle.perturb("c", np.random.default_rng(0))
        assert report.shape == (5,)
        assert report.dtype == np.uint8
        assert set(np.unique(report)) <= {0, 1}

    def test_true_bit_set_more_often_than_others(self):
        oracle = UnaryEncoding(3.0, domain=list("abcd"))
        rng = np.random.default_rng(1)
        reports = np.array([oracle.perturb("b", rng) for _ in range(2000)])
        rates = reports.mean(axis=0)
        true_index = oracle.index_of("b")
        others = np.delete(rates, true_index)
        assert rates[true_index] > others.max()


class TestEstimation:
    def test_unbiasedness(self):
        rng = np.random.default_rng(2)
        oracle = UnaryEncoding(2.0, domain=list("abcd"))
        truth = ["a"] * 5000 + ["b"] * 2000 + ["c"] * 500
        reports = [oracle.perturb(v, rng) for v in truth]
        counts = oracle.estimate_map(reports)
        assert counts["a"] == pytest.approx(5000, rel=0.1)
        assert counts["b"] == pytest.approx(2000, rel=0.2)
        assert counts["d"] == pytest.approx(0, abs=400)

    def test_empty_reports_are_zero(self):
        oracle = UnaryEncoding(1.0, domain=list("ab"))
        assert np.allclose(oracle.estimate_counts([]), 0.0)

    def test_shape_mismatch_raises(self):
        oracle = UnaryEncoding(1.0, domain=list("abc"))
        with pytest.raises(ValueError):
            oracle.estimate_counts([np.zeros(5, dtype=np.uint8)])

    def test_oue_variance_below_sue(self):
        """The 'optimized' probabilities should never increase estimator variance."""
        n = 1000
        oue = UnaryEncoding(1.0, domain=list("abcd"), optimized=True).variance(n)
        sue = UnaryEncoding(1.0, domain=list("abcd"), optimized=False).variance(n)
        assert oue <= sue + 1e-9


class TestBatchAPIs:
    def test_perturb_batch_shape_and_dtype(self):
        oracle = UnaryEncoding(1.0, domain=list(range(6)))
        bits = oracle.perturb_batch([0, 1, 2, 3], rng=0)
        assert bits.shape == (4, 6)
        assert bits.dtype == np.uint8

    def test_encode_batch_is_partition_invariant(self):
        oracle = UnaryEncoding(2.0, domain=list(range(9)))
        user_ids = np.arange(2000)
        indices = user_ids % 9
        whole = oracle.encode_batch(indices, user_ids, key=13)
        pieces = np.vstack(
            [
                oracle.encode_batch(indices[:499], user_ids[:499], key=13),
                oracle.encode_batch(indices[499:], user_ids[499:], key=13),
            ]
        )
        assert np.array_equal(whole, pieces)

    def test_true_bit_rate_near_p(self):
        oracle = UnaryEncoding(2.0, domain=list(range(5)))
        indices = np.zeros(30000, dtype=np.int64)
        bits = oracle.encode_batch(indices, np.arange(30000), key=3)
        assert abs(bits[:, 0].mean() - oracle.p) < 0.01
        assert abs(bits[:, 1:].mean() - oracle.q) < 0.01

    def test_batch_estimation_is_unbiased(self):
        oracle = UnaryEncoding(3.0, domain=list(range(4)))
        true = np.array([5000, 3000, 1500, 500])
        indices = np.repeat(np.arange(4), true)
        bits = oracle.encode_batch(indices, np.arange(indices.size), key=21)
        estimates = oracle.estimate_counts_from_observed(
            oracle.aggregate_batch(bits), indices.size
        )
        assert np.allclose(estimates, true, atol=350)
