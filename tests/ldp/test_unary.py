"""Tests for SUE / OUE unary encoding."""

import numpy as np
import pytest

from repro.ldp.unary import UnaryEncoding


class TestConstruction:
    def test_oue_probabilities(self):
        oracle = UnaryEncoding(1.0, domain=list("abcd"), optimized=True)
        assert oracle.p == pytest.approx(0.5)
        assert oracle.q == pytest.approx(1.0 / (np.e + 1.0))

    def test_sue_probabilities_symmetric(self):
        oracle = UnaryEncoding(2.0, domain=list("abcd"), optimized=False)
        assert oracle.p + oracle.q == pytest.approx(1.0)
        assert oracle.p / oracle.q == pytest.approx(np.exp(1.0))


class TestPerturb:
    def test_report_shape_and_dtype(self):
        oracle = UnaryEncoding(1.0, domain=list("abcde"))
        report = oracle.perturb("c", np.random.default_rng(0))
        assert report.shape == (5,)
        assert report.dtype == np.uint8
        assert set(np.unique(report)) <= {0, 1}

    def test_true_bit_set_more_often_than_others(self):
        oracle = UnaryEncoding(3.0, domain=list("abcd"))
        rng = np.random.default_rng(1)
        reports = np.array([oracle.perturb("b", rng) for _ in range(2000)])
        rates = reports.mean(axis=0)
        true_index = oracle.index_of("b")
        others = np.delete(rates, true_index)
        assert rates[true_index] > others.max()


class TestEstimation:
    def test_unbiasedness(self):
        rng = np.random.default_rng(2)
        oracle = UnaryEncoding(2.0, domain=list("abcd"))
        truth = ["a"] * 5000 + ["b"] * 2000 + ["c"] * 500
        reports = [oracle.perturb(v, rng) for v in truth]
        counts = oracle.estimate_map(reports)
        assert counts["a"] == pytest.approx(5000, rel=0.1)
        assert counts["b"] == pytest.approx(2000, rel=0.2)
        assert counts["d"] == pytest.approx(0, abs=400)

    def test_empty_reports_are_zero(self):
        oracle = UnaryEncoding(1.0, domain=list("ab"))
        assert np.allclose(oracle.estimate_counts([]), 0.0)

    def test_shape_mismatch_raises(self):
        oracle = UnaryEncoding(1.0, domain=list("abc"))
        with pytest.raises(ValueError):
            oracle.estimate_counts([np.zeros(5, dtype=np.uint8)])

    def test_oue_variance_below_sue(self):
        """The 'optimized' probabilities should never increase estimator variance."""
        n = 1000
        oue = UnaryEncoding(1.0, domain=list("abcd"), optimized=True).variance(n)
        sue = UnaryEncoding(1.0, domain=list("abcd"), optimized=False).variance(n)
        assert oue <= sue + 1e-9
