"""Tests for numeric value-perturbation mechanisms."""

import numpy as np
import pytest

from repro.ldp.value import DuchiMechanism, LaplaceMechanism, PiecewiseMechanism


class TestLaplace:
    def test_scale(self):
        mechanism = LaplaceMechanism(2.0, low=-1.0, high=1.0)
        assert mechanism.scale == pytest.approx(1.0)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            LaplaceMechanism(1.0, low=1.0, high=0.0)

    def test_mean_approximately_unbiased(self):
        mechanism = LaplaceMechanism(1.0)
        rng = np.random.default_rng(0)
        reports = [mechanism.perturb(0.3, rng) for _ in range(4000)]
        assert np.mean(reports) == pytest.approx(0.3, abs=0.1)

    def test_clipping_applied(self):
        mechanism = LaplaceMechanism(100.0, low=-1.0, high=1.0)
        rng = np.random.default_rng(1)
        # With a huge epsilon noise is negligible, so the clipped value shows.
        assert mechanism.perturb(5.0, rng) == pytest.approx(1.0, abs=0.2)


class TestPiecewise:
    def test_output_bounded_by_C(self):
        mechanism = PiecewiseMechanism(1.0)
        rng = np.random.default_rng(2)
        reports = [mechanism.perturb(0.5, rng) for _ in range(1000)]
        assert all(-mechanism.C - 1e-9 <= r <= mechanism.C + 1e-9 for r in reports)

    def test_approximately_unbiased(self):
        mechanism = PiecewiseMechanism(2.0)
        rng = np.random.default_rng(3)
        for truth in (-0.8, 0.0, 0.6):
            reports = [mechanism.perturb(truth, rng) for _ in range(6000)]
            assert np.mean(reports) == pytest.approx(truth, abs=0.12)

    def test_larger_epsilon_smaller_C(self):
        assert PiecewiseMechanism(4.0).C < PiecewiseMechanism(0.5).C


class TestDuchi:
    def test_output_is_binary(self):
        mechanism = DuchiMechanism(1.0)
        rng = np.random.default_rng(4)
        outputs = {mechanism.perturb(0.2, rng) for _ in range(100)}
        assert outputs <= {mechanism.magnitude, -mechanism.magnitude}

    def test_approximately_unbiased(self):
        mechanism = DuchiMechanism(1.5)
        rng = np.random.default_rng(5)
        reports = [mechanism.perturb(0.4, rng) for _ in range(8000)]
        assert np.mean(reports) == pytest.approx(0.4, abs=0.1)
