"""Tests for Optimized Local Hashing."""

import numpy as np
import pytest

from repro.ldp.olh import OptimizedLocalHashing


class TestConstruction:
    def test_default_hash_domain(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abcdefgh"))
        assert oracle.g == max(2, int(round(np.e)) + 1)

    def test_explicit_g(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abcd"), g=4)
        assert oracle.g == 4

    def test_invalid_g(self):
        with pytest.raises(ValueError):
            OptimizedLocalHashing(1.0, domain=list("abcd"), g=1)


class TestPerturbAndEstimate:
    def test_report_format(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abcd"))
        seed, value = oracle.perturb("a", np.random.default_rng(0))
        assert isinstance(seed, int)
        assert 0 <= value < oracle.g

    def test_hash_is_deterministic_per_seed(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abcd"))
        assert oracle._hash(2, 123) == oracle._hash(2, 123)

    def test_estimation_recovers_heavy_hitter(self):
        rng = np.random.default_rng(3)
        oracle = OptimizedLocalHashing(3.0, domain=list("abcdef"))
        truth = ["a"] * 3000 + ["b"] * 500
        reports = [oracle.perturb(v, rng) for v in truth]
        counts = oracle.estimate_map(reports)
        assert counts["a"] > counts["b"] > max(counts[c] for c in "cdef") - 300

    def test_empty_reports(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abc"))
        assert np.allclose(oracle.estimate_counts([]), 0.0)


class TestBatchAPIs:
    def test_hash_array_matches_scalar_hash(self):
        oracle = OptimizedLocalHashing(2.0, domain=list(range(30)))
        seeds = np.array([1, 99, 123456, 2**30])
        for index in (0, 7, 29):
            vectorized = oracle._hash_array(index, seeds)
            scalar = [oracle._hash(index, int(seed)) for seed in seeds]
            assert list(vectorized) == scalar

    def test_encode_batch_is_partition_invariant(self):
        oracle = OptimizedLocalHashing(2.0, domain=list(range(12)))
        user_ids = np.arange(3000)
        indices = user_ids % 12
        seeds_a, reported_a = oracle.encode_batch(indices, user_ids, key=5)
        seeds_b = np.concatenate(
            [
                oracle.encode_batch(indices[:777], user_ids[:777], key=5)[0],
                oracle.encode_batch(indices[777:], user_ids[777:], key=5)[0],
            ]
        )
        assert np.array_equal(seeds_a, seeds_b)
        assert reported_a.min() >= 0 and reported_a.max() < oracle.g

    def test_batch_estimation_recovers_heavy_hitter(self):
        oracle = OptimizedLocalHashing(4.0, domain=list(range(10)))
        indices = np.zeros(20000, dtype=np.int64)  # everyone holds item 0
        seeds, reported = oracle.encode_batch(indices, np.arange(20000), key=9)
        estimates = oracle.estimate_counts_from_support(
            oracle.aggregate_batch(seeds, reported), 20000
        )
        assert int(np.argmax(estimates)) == 0
        assert estimates[0] > 15000

    def test_perturb_batch_report_format(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abcde"))
        reports = oracle.perturb_batch(["a", "b", "c"], rng=0)
        assert len(reports) == 3
        for seed, value in reports:
            assert isinstance(seed, int) and isinstance(value, int)
            assert 0 <= value < oracle.g

    def test_vectorized_estimate_matches_loop_reference(self):
        """The vectorized estimate_counts equals the old per-report loop."""
        oracle = OptimizedLocalHashing(2.0, domain=list(range(8)))
        rng = np.random.default_rng(1)
        reports = [oracle.perturb(int(v), rng) for v in rng.integers(0, 8, size=300)]
        support = np.zeros(oracle.domain_size, dtype=float)
        for seed, reported in reports:
            for index in range(oracle.domain_size):
                if oracle._hash(index, seed) == reported:
                    support[index] += 1.0
        p_star = np.exp(oracle.epsilon) / (np.exp(oracle.epsilon) + oracle.g - 1)
        reference = (support - len(reports) / oracle.g) / (p_star - 1.0 / oracle.g)
        assert np.allclose(oracle.estimate_counts(reports), reference)
