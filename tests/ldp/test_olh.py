"""Tests for Optimized Local Hashing."""

import numpy as np
import pytest

from repro.ldp.olh import OptimizedLocalHashing


class TestConstruction:
    def test_default_hash_domain(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abcdefgh"))
        assert oracle.g == max(2, int(round(np.e)) + 1)

    def test_explicit_g(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abcd"), g=4)
        assert oracle.g == 4

    def test_invalid_g(self):
        with pytest.raises(ValueError):
            OptimizedLocalHashing(1.0, domain=list("abcd"), g=1)


class TestPerturbAndEstimate:
    def test_report_format(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abcd"))
        seed, value = oracle.perturb("a", np.random.default_rng(0))
        assert isinstance(seed, int)
        assert 0 <= value < oracle.g

    def test_hash_is_deterministic_per_seed(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abcd"))
        assert oracle._hash(2, 123) == oracle._hash(2, 123)

    def test_estimation_recovers_heavy_hitter(self):
        rng = np.random.default_rng(3)
        oracle = OptimizedLocalHashing(3.0, domain=list("abcdef"))
        truth = ["a"] * 3000 + ["b"] * 500
        reports = [oracle.perturb(v, rng) for v in truth]
        counts = oracle.estimate_map(reports)
        assert counts["a"] > counts["b"] > max(counts[c] for c in "cdef") - 300

    def test_empty_reports(self):
        oracle = OptimizedLocalHashing(1.0, domain=list("abc"))
        assert np.allclose(oracle.estimate_counts([]), 0.0)
