"""Property-based tests for the privacy accountant.

The accountant's algebra — sequential composition within a population,
parallel composition across disjoint populations, per-(population, window)
strict enforcement — is exactly the kind of code where a hand-picked example
passes while an order- or grouping-dependent bug hides.  Hypothesis drives
the laws over random spend sequences instead.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.exceptions import PrivacyBudgetError  # noqa: E402
from repro.ldp.accounting import PrivacyAccountant  # noqa: E402

POPULATIONS = ("Pa", "Pb", "Pc1", "Pc2", "Pd")

#: One window-less spend: (population, epsilon).
spends = st.lists(
    st.tuples(
        st.sampled_from(POPULATIONS),
        st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
    ),
    min_size=1,
    max_size=25,
)


def _charge_all(accountant, sequence):
    for population, epsilon in sequence:
        accountant.spend(population, epsilon)


@given(sequence=spends)
def test_sequential_total_is_sum_of_spends_per_population(sequence):
    accountant = PrivacyAccountant(target_epsilon=1e9, strict=False)
    _charge_all(accountant, sequence)
    for population in POPULATIONS:
        expected = sum(eps for pop, eps in sequence if pop == population)
        assert math.isclose(
            accountant.sequential_epsilon(population), expected, abs_tol=1e-9
        )


@given(sequence=spends)
def test_user_level_epsilon_is_max_across_populations(sequence):
    accountant = PrivacyAccountant(target_epsilon=1e9, strict=False)
    _charge_all(accountant, sequence)
    totals = accountant.per_population()
    assert math.isclose(
        accountant.user_level_epsilon(), max(totals.values()), abs_tol=1e-9
    )
    # per_population only lists populations actually charged.
    assert set(totals) == {pop for pop, _ in sequence}


@given(sequence=spends, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_spend_order_is_irrelevant(sequence, seed):
    import random

    shuffled = list(sequence)
    random.Random(seed).shuffle(shuffled)
    ordered = PrivacyAccountant(target_epsilon=1e9, strict=False)
    permuted = PrivacyAccountant(target_epsilon=1e9, strict=False)
    _charge_all(ordered, sequence)
    _charge_all(permuted, shuffled)
    assert math.isclose(
        ordered.user_level_epsilon(), permuted.user_level_epsilon(), abs_tol=1e-9
    )
    for population in POPULATIONS:
        assert math.isclose(
            ordered.sequential_epsilon(population),
            permuted.sequential_epsilon(population),
            abs_tol=1e-9,
        )


@given(sequence=spends)
def test_strict_mode_raises_exactly_when_a_population_would_exceed_target(sequence):
    target = 4.0
    strict = PrivacyAccountant(target_epsilon=target, strict=True)
    running = {pop: 0.0 for pop in POPULATIONS}
    for population, epsilon in sequence:
        would_be = running[population] + epsilon
        if would_be > target + 1e-12:
            with pytest.raises(PrivacyBudgetError):
                strict.spend(population, epsilon)
            # The rejected spend must not be recorded.
            assert math.isclose(
                strict.sequential_epsilon(population),
                running[population],
                abs_tol=1e-9,
            )
        else:
            strict.spend(population, epsilon)
            running[population] = would_be
    assert strict.is_valid()


@given(sequence=spends)
def test_lenient_mode_records_everything_and_validity_matches_worst_scope(sequence):
    target = 4.0
    lenient = PrivacyAccountant(target_epsilon=target, strict=False)
    _charge_all(lenient, sequence)
    assert len(lenient.spends) == len(sequence)
    worst = max(lenient.per_population().values())
    assert lenient.is_valid() == (worst <= target + 1e-12)


@settings(max_examples=50)
@given(
    per_window=st.lists(
        st.lists(
            st.tuples(
                st.sampled_from(POPULATIONS),
                st.floats(min_value=0.01, max_value=2.0, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        ),
        min_size=1,
        max_size=5,
    )
)
def test_windowed_spends_compose_sequentially_across_windows(per_window):
    accountant = PrivacyAccountant(target_epsilon=1e9, strict=False)
    for window, window_spends in enumerate(per_window):
        for population, epsilon in window_spends:
            accountant.spend(population, epsilon, window=window)
    expected = {
        window: max(
            sum(eps for pop, eps in window_spends if pop == population)
            for population in {pop for pop, _ in window_spends}
        )
        for window, window_spends in enumerate(per_window)
    }
    observed = accountant.window_epsilons()
    assert set(observed) == set(expected)
    for window, epsilon in expected.items():
        assert math.isclose(observed[window], epsilon, abs_tol=1e-9)
    # Worst case: a user in every window sees the sum of window maxima.
    assert math.isclose(
        accountant.user_level_epsilon(), sum(expected.values()), abs_tol=1e-9
    )
    # A one-window horizon is the single worst window.
    assert math.isclose(
        accountant.user_level_epsilon(horizon=1),
        max(expected.values()),
        abs_tol=1e-9,
    )
    # Horizons are monotone in h and capped by the full-stream worst case.
    previous = 0.0
    for horizon in range(1, len(per_window) + 2):
        current = accountant.user_level_epsilon(horizon=horizon)
        assert current >= previous - 1e-9
        assert current <= accountant.user_level_epsilon() + 1e-9
        previous = current
