"""Tests for the privacy accountant."""

import pytest

from repro.exceptions import PrivacyBudgetError
from repro.ldp.accounting import BudgetSpend, PrivacyAccountant


class TestBudgetSpend:
    def test_valid(self):
        spend = BudgetSpend(population="Pa", epsilon=1.0, mechanism="GRR")
        assert spend.epsilon == 1.0

    def test_invalid_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            BudgetSpend(population="Pa", epsilon=-1.0)


class TestPrivacyAccountant:
    def test_parallel_composition_across_populations(self):
        accountant = PrivacyAccountant(target_epsilon=2.0)
        accountant.spend("Pa", 2.0)
        accountant.spend("Pb", 2.0)
        accountant.spend("Pc", 2.0)
        assert accountant.user_level_epsilon() == pytest.approx(2.0)
        assert accountant.is_valid()

    def test_sequential_composition_within_population(self):
        accountant = PrivacyAccountant(target_epsilon=2.0, strict=False)
        accountant.spend("Pa", 1.5)
        accountant.spend("Pa", 1.5)
        assert accountant.sequential_epsilon("Pa") == pytest.approx(3.0)
        assert not accountant.is_valid()

    def test_strict_mode_raises_on_overspend(self):
        accountant = PrivacyAccountant(target_epsilon=1.0)
        accountant.spend("Pa", 1.0)
        with pytest.raises(PrivacyBudgetError):
            accountant.spend("Pa", 0.5)
        # The failed spend must not be recorded.
        assert accountant.sequential_epsilon("Pa") == pytest.approx(1.0)

    def test_per_population_breakdown(self):
        accountant = PrivacyAccountant(target_epsilon=4.0)
        accountant.spend("Pa", 4.0)
        accountant.spend("Pd", 4.0)
        assert accountant.per_population() == {"Pa": 4.0, "Pd": 4.0}

    def test_no_spends_means_zero_epsilon(self):
        accountant = PrivacyAccountant(target_epsilon=1.0)
        assert accountant.user_level_epsilon() == 0.0
        assert accountant.is_valid()

    def test_summary_mentions_populations(self):
        accountant = PrivacyAccountant(target_epsilon=1.0)
        accountant.spend("Pa", 1.0, mechanism="GRR")
        text = accountant.summary()
        assert "Pa" in text and "within budget: True" in text

    def test_invalid_target(self):
        with pytest.raises(PrivacyBudgetError):
            PrivacyAccountant(target_epsilon=0.0)
