"""Tests for Generalized Randomized Response."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DomainError, PrivacyBudgetError
from repro.ldp.grr import GeneralizedRandomizedResponse


class TestConstruction:
    def test_probabilities_sum_consistently(self):
        oracle = GeneralizedRandomizedResponse(1.0, domain=list("abcd"))
        # p + (d-1) q == 1
        assert np.isclose(oracle.p + (oracle.domain_size - 1) * oracle.q, 1.0)

    def test_privacy_ratio_is_exp_epsilon(self):
        epsilon = 2.0
        oracle = GeneralizedRandomizedResponse(epsilon, domain=list("abc"))
        assert np.isclose(oracle.p / oracle.q, np.exp(epsilon))

    def test_rejects_tiny_domain(self):
        with pytest.raises(DomainError):
            GeneralizedRandomizedResponse(1.0, domain=["only"])

    def test_rejects_duplicate_domain(self):
        with pytest.raises(DomainError):
            GeneralizedRandomizedResponse(1.0, domain=["a", "a"])

    def test_rejects_bad_epsilon(self):
        with pytest.raises(PrivacyBudgetError):
            GeneralizedRandomizedResponse(0.0, domain=list("ab"))


class TestPerturb:
    def test_output_stays_in_domain(self):
        oracle = GeneralizedRandomizedResponse(1.0, domain=list("abcd"))
        rng = np.random.default_rng(0)
        outputs = {oracle.perturb("a", rng) for _ in range(200)}
        assert outputs <= set("abcd")

    def test_out_of_domain_value_raises(self):
        oracle = GeneralizedRandomizedResponse(1.0, domain=list("ab"))
        with pytest.raises(DomainError):
            oracle.perturb("z", np.random.default_rng(0))

    def test_high_epsilon_mostly_truthful(self):
        oracle = GeneralizedRandomizedResponse(8.0, domain=list("abcd"))
        rng = np.random.default_rng(1)
        reports = [oracle.perturb("c", rng) for _ in range(500)]
        assert reports.count("c") / len(reports) > 0.9

    def test_perturb_many_length(self):
        oracle = GeneralizedRandomizedResponse(1.0, domain=list("abcd"))
        assert len(oracle.perturb_many(list("abca"), rng=0)) == 4

    def test_tuple_domain_supported(self):
        domain = [("a", "b"), ("b", "a"), ("a", "c")]
        oracle = GeneralizedRandomizedResponse(1.0, domain=domain)
        assert oracle.perturb(("a", "b"), np.random.default_rng(0)) in domain


class TestEstimation:
    def test_unbiasedness_on_skewed_data(self):
        rng = np.random.default_rng(2)
        oracle = GeneralizedRandomizedResponse(2.0, domain=list("abcd"))
        truth = ["a"] * 6000 + ["b"] * 3000 + ["c"] * 1000
        reports = [oracle.perturb(v, rng) for v in truth]
        estimates = oracle.estimate_map(reports)
        assert estimates["a"] == pytest.approx(6000, rel=0.15)
        assert estimates["b"] == pytest.approx(3000, rel=0.2)
        assert estimates["d"] == pytest.approx(0, abs=600)

    def test_estimated_counts_sum_to_n(self):
        rng = np.random.default_rng(3)
        oracle = GeneralizedRandomizedResponse(1.0, domain=list("abc"))
        reports = [oracle.perturb("a", rng) for _ in range(300)]
        counts = oracle.estimate_counts(reports)
        assert counts.sum() == pytest.approx(300, abs=1e-6)

    def test_empty_reports(self):
        oracle = GeneralizedRandomizedResponse(1.0, domain=list("abc"))
        assert np.allclose(oracle.estimate_counts([]), 0.0)

    def test_frequencies_normalized(self):
        rng = np.random.default_rng(4)
        oracle = GeneralizedRandomizedResponse(1.0, domain=list("abc"))
        reports = [oracle.perturb("b", rng) for _ in range(200)]
        assert oracle.estimate_frequencies(reports).sum() == pytest.approx(1.0)

    def test_variance_decreases_with_epsilon(self):
        low = GeneralizedRandomizedResponse(0.5, domain=list("abcd")).variance(1000)
        high = GeneralizedRandomizedResponse(4.0, domain=list("abcd")).variance(1000)
        assert high < low


class TestPrivacyProperty:
    @given(st.floats(min_value=0.2, max_value=6.0))
    @settings(max_examples=20)
    def test_probability_ratio_bounded(self, epsilon):
        """For any two inputs and any output, Pr ratios are bounded by e^eps."""
        oracle = GeneralizedRandomizedResponse(epsilon, domain=list("abcde"))
        # The report distribution has only two probability levels: p and q.
        ratio = oracle.p / oracle.q
        assert ratio <= np.exp(epsilon) + 1e-9


class TestBatchAPIs:
    def test_perturb_batch_matches_scalar_distribution(self):
        """The vectorized batch path has the same keep-rate as the scalar path."""
        oracle = GeneralizedRandomizedResponse(2.0, domain=list("abcd"))
        values = ["a"] * 20000
        batch = oracle.perturb_batch(values, rng=0)
        scalar = oracle.perturb_many(values[:5000], rng=0)
        batch_rate = np.mean([v == "a" for v in batch])
        scalar_rate = np.mean([v == "a" for v in scalar])
        assert abs(batch_rate - oracle.p) < 0.02
        assert abs(batch_rate - scalar_rate) < 0.03

    def test_encode_batch_is_partition_invariant(self):
        oracle = GeneralizedRandomizedResponse(1.5, domain=list("abcd"))
        user_ids = np.arange(5000)
        indices = user_ids % 4
        whole = oracle.encode_batch(indices, user_ids, key=7)
        pieces = np.concatenate(
            [
                oracle.encode_batch(indices[:311], user_ids[:311], key=7),
                oracle.encode_batch(indices[311:], user_ids[311:], key=7),
            ]
        )
        assert np.array_equal(whole, pieces)

    def test_encode_batch_outputs_valid_indices(self):
        oracle = GeneralizedRandomizedResponse(1.0, domain=list("abc"))
        reported = oracle.encode_batch(np.zeros(1000, dtype=np.int64), np.arange(1000), key=3)
        assert reported.min() >= 0 and reported.max() < 3

    def test_aggregate_and_estimate_are_unbiased(self):
        oracle = GeneralizedRandomizedResponse(3.0, domain=list("abcd"))
        true = np.array([7000, 2000, 800, 200])
        indices = np.repeat(np.arange(4), true)
        reported = oracle.encode_batch(indices, np.arange(indices.size), key=11)
        estimates = oracle.estimate_counts_from_observed(
            oracle.aggregate_batch(reported), indices.size
        )
        assert np.allclose(estimates, true, atol=300)

    def test_aggregate_batch_is_integer_and_mergeable(self):
        oracle = GeneralizedRandomizedResponse(1.0, domain=list("ab"))
        reported = np.array([0, 1, 1, 0, 1])
        counts = oracle.aggregate_batch(reported)
        assert counts.dtype == np.int64
        assert np.array_equal(
            counts,
            oracle.aggregate_batch(reported[:2]) + oracle.aggregate_batch(reported[2:]),
        )
