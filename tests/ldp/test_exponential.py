"""Tests for the Exponential Mechanism."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import DomainError
from repro.ldp.exponential import ExponentialMechanism


class TestProbabilities:
    def test_probabilities_sum_to_one(self):
        mechanism = ExponentialMechanism(1.0)
        probabilities = mechanism.selection_probabilities([0.1, 0.5, 0.9])
        assert probabilities.sum() == pytest.approx(1.0)

    def test_higher_score_higher_probability(self):
        mechanism = ExponentialMechanism(2.0)
        probabilities = mechanism.selection_probabilities([0.0, 1.0])
        assert probabilities[1] > probabilities[0]

    def test_ratio_matches_definition(self):
        epsilon = 3.0
        mechanism = ExponentialMechanism(epsilon)
        probabilities = mechanism.selection_probabilities([0.0, 1.0])
        assert probabilities[1] / probabilities[0] == pytest.approx(np.exp(epsilon / 2.0))

    def test_uniform_when_scores_equal(self):
        mechanism = ExponentialMechanism(1.0)
        probabilities = mechanism.selection_probabilities([0.4, 0.4, 0.4])
        assert np.allclose(probabilities, 1.0 / 3.0)

    def test_empty_scores_rejected(self):
        with pytest.raises(DomainError):
            ExponentialMechanism(1.0).selection_probabilities([])

    def test_invalid_sensitivity(self):
        with pytest.raises(ValueError):
            ExponentialMechanism(1.0, sensitivity=0.0)

    @given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=20))
    @settings(max_examples=50)
    def test_probabilities_valid_for_any_scores(self, scores):
        probabilities = ExponentialMechanism(2.0).selection_probabilities(scores)
        assert np.all(probabilities >= 0)
        assert probabilities.sum() == pytest.approx(1.0)


class TestSelection:
    def test_perturb_returns_valid_index(self):
        mechanism = ExponentialMechanism(1.0)
        index = mechanism.perturb([0.2, 0.8, 0.5], np.random.default_rng(0))
        assert index in (0, 1, 2)

    def test_best_candidate_selected_most_often(self):
        mechanism = ExponentialMechanism(6.0)
        rng = np.random.default_rng(1)
        picks = [mechanism.perturb([0.0, 0.2, 1.0], rng) for _ in range(500)]
        assert picks.count(2) > 350

    def test_select_with_score_function(self):
        mechanism = ExponentialMechanism(8.0)
        chosen = mechanism.select(
            ["far", "near"],
            score_fn=lambda c: 1.0 if c == "near" else 0.0,
            rng=np.random.default_rng(2),
        )
        assert chosen in ("far", "near")

    def test_select_empty_candidates(self):
        with pytest.raises(DomainError):
            ExponentialMechanism(1.0).select([], score_fn=lambda c: 1.0)


class TestCdfSampling:
    def test_cdf_reaches_one(self):
        mechanism = ExponentialMechanism(2.0)
        cdf = mechanism.selection_cdf([0.1, 0.9, 0.4])
        assert np.isclose(cdf[-1], 1.0)
        assert np.all(np.diff(cdf) >= 0)

    def test_sample_from_cdf_matches_probabilities(self):
        mechanism = ExponentialMechanism(3.0)
        scores = [0.0, 1.0, 0.5]
        probabilities = mechanism.selection_probabilities(scores)
        cdf = mechanism.selection_cdf(scores)
        uniforms = np.random.default_rng(0).random(200000)
        selected = ExponentialMechanism.sample_from_cdf(cdf, uniforms)
        observed = np.bincount(selected, minlength=3) / 200000
        assert np.allclose(observed, probabilities, atol=0.005)

    def test_sample_from_cdf_clips_to_last_index(self):
        """A uniform at (or beyond) the top of the CDF still yields a valid index."""
        cdf = np.array([0.3, 0.6, 0.9999999])
        selected = ExponentialMechanism.sample_from_cdf(cdf, np.array([0.99999995, 0.0]))
        assert list(selected) == [2, 0]
