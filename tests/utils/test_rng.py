"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_seed_is_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_different_seeds_differ(self):
        assert not np.allclose(ensure_rng(1).random(5), ensure_rng(2).random(5))

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_children_are_independent_generators(self):
        children = spawn_rngs(0, 3)
        draws = [child.random() for child in children]
        assert len(set(draws)) == 3

    def test_deterministic_given_seed(self):
        a = [g.random() for g in spawn_rngs(5, 4)]
        b = [g.random() for g in spawn_rngs(5, 4)]
        assert a == b

    def test_zero_children(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
