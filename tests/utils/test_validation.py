"""Tests for input validation helpers."""

import numpy as np
import pytest

from repro.exceptions import DataShapeError, EmptyDatasetError, PrivacyBudgetError
from repro.utils.validation import (
    check_epsilon,
    check_positive_int,
    check_probability,
    check_time_series,
    check_time_series_dataset,
)


class TestCheckEpsilon:
    @pytest.mark.parametrize("value", [0.1, 1, 4.0, 10])
    def test_valid(self, value):
        assert check_epsilon(value) == float(value)

    @pytest.mark.parametrize("value", [0, -1, float("inf"), float("nan")])
    def test_invalid(self, value):
        with pytest.raises(PrivacyBudgetError):
            check_epsilon(value)

    def test_non_numeric(self):
        with pytest.raises(PrivacyBudgetError):
            check_epsilon("abc")


class TestCheckPositiveInt:
    def test_valid(self):
        assert check_positive_int(3) == 3

    def test_numpy_int(self):
        assert check_positive_int(np.int64(5)) == 5

    @pytest.mark.parametrize("value", [0, -2])
    def test_non_positive(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value)

    @pytest.mark.parametrize("value", [1.5, "3", True])
    def test_wrong_type(self, value):
        with pytest.raises(ValueError):
            check_positive_int(value)


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_valid(self, value):
        assert check_probability(value) == value

    @pytest.mark.parametrize("value", [-0.01, 1.01])
    def test_invalid(self, value):
        with pytest.raises(ValueError):
            check_probability(value)


class TestCheckTimeSeries:
    def test_returns_float_array(self):
        out = check_time_series([1, 2, 3])
        assert out.dtype == float
        assert out.shape == (3,)

    def test_rejects_2d(self):
        with pytest.raises(DataShapeError):
            check_time_series([[1, 2], [3, 4]])

    def test_rejects_empty(self):
        with pytest.raises(DataShapeError):
            check_time_series([])

    def test_rejects_nan(self):
        with pytest.raises(DataShapeError):
            check_time_series([1.0, float("nan")])

    def test_rejects_inf(self):
        with pytest.raises(DataShapeError):
            check_time_series([1.0, float("inf")])


class TestCheckTimeSeriesDataset:
    def test_valid(self):
        out = check_time_series_dataset([[1, 2], [3, 4, 5]])
        assert len(out) == 2
        assert out[1].size == 3

    def test_empty_dataset(self):
        with pytest.raises(EmptyDatasetError):
            check_time_series_dataset([])

    def test_invalid_member(self):
        with pytest.raises(DataShapeError):
            check_time_series_dataset([[1, 2], []])
