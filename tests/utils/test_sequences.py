"""Tests (including property-based tests) for sequence and population helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.sequences import (
    chunk_evenly,
    pad_or_truncate,
    run_length_collapse,
    split_population,
)


class TestRunLengthCollapse:
    def test_paper_example(self):
        assert "".join(run_length_collapse("aaaccccccbbbbaaa")) == "acba"

    def test_empty(self):
        assert run_length_collapse([]) == []

    def test_no_repeats_unchanged(self):
        assert run_length_collapse(list("abcd")) == list("abcd")

    def test_all_same(self):
        assert run_length_collapse("aaaa") == ["a"]

    @given(st.lists(st.sampled_from("abcd"), max_size=50))
    def test_no_consecutive_duplicates(self, symbols):
        collapsed = run_length_collapse(symbols)
        assert all(collapsed[i] != collapsed[i + 1] for i in range(len(collapsed) - 1))

    @given(st.lists(st.sampled_from("abcd"), max_size=50))
    def test_is_subsequence_and_idempotent(self, symbols):
        collapsed = run_length_collapse(symbols)
        # Idempotency.
        assert run_length_collapse(collapsed) == collapsed
        # Order of first occurrences of each run is preserved.
        iterator = iter(symbols)
        assert all(any(c == s for s in iterator) for c in collapsed)


class TestPadOrTruncate:
    def test_pad(self):
        assert pad_or_truncate(["a"], 3, "_") == ["a", "_", "_"]

    def test_truncate(self):
        assert pad_or_truncate(list("abcde"), 3, "_") == ["a", "b", "c"]

    def test_exact(self):
        assert pad_or_truncate(list("abc"), 3, "_") == ["a", "b", "c"]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            pad_or_truncate([1, 2], 0, 0)

    @given(st.lists(st.integers(), max_size=20), st.integers(min_value=1, max_value=30))
    def test_output_length(self, items, length):
        assert len(pad_or_truncate(items, length, -1)) == length


class TestSplitPopulation:
    def test_partition_is_complete_and_disjoint(self):
        groups = split_population(100, [0.02, 0.08, 0.7, 0.2], rng=0)
        all_indices = np.concatenate(groups)
        assert sorted(all_indices.tolist()) == list(range(100))

    def test_group_sizes_roughly_match_fractions(self):
        groups = split_population(1000, [0.1, 0.9], rng=1)
        assert abs(len(groups[0]) - 100) <= 1

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            split_population(10, [0.5, 0.2])

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            split_population(10, [-0.5, 1.5])

    def test_zero_population(self):
        groups = split_population(0, [0.5, 0.5], rng=0)
        assert all(len(g) == 0 for g in groups)

    def test_reproducible(self):
        a = split_population(50, [0.3, 0.7], rng=3)
        b = split_population(50, [0.3, 0.7], rng=3)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))

    @given(
        st.integers(min_value=0, max_value=300),
        st.integers(min_value=2, max_value=5),
    )
    @settings(max_examples=30)
    def test_property_partition(self, n, n_groups):
        fractions = [1.0 / n_groups] * n_groups
        groups = split_population(n, fractions, rng=0)
        combined = np.concatenate(groups) if groups else np.array([])
        assert sorted(combined.tolist()) == list(range(n))


class TestChunkEvenly:
    def test_chunks_cover_all(self):
        chunks = chunk_evenly(range(10), 3)
        assert sorted(np.concatenate(chunks).tolist()) == list(range(10))

    def test_number_of_chunks(self):
        assert len(chunk_evenly(range(5), 7)) == 7

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            chunk_evenly(range(5), 0)

    def test_near_equal_sizes(self):
        sizes = [len(c) for c in chunk_evenly(range(11), 3)]
        assert max(sizes) - min(sizes) <= 1
