"""Tests for the counter-based PRF behind the collection service."""

import numpy as np
import pytest

from repro.utils.prf import (
    derive_key,
    fresh_key,
    prf_integers,
    prf_uint64,
    prf_uniform_matrix,
    prf_uniforms,
)


class TestDeterminism:
    def test_same_inputs_same_outputs(self):
        ids = np.arange(1000)
        assert np.array_equal(prf_uniforms(7, ids), prf_uniforms(7, ids))

    def test_different_keys_differ(self):
        ids = np.arange(1000)
        assert not np.array_equal(prf_uniforms(7, ids), prf_uniforms(8, ids))

    def test_different_slots_differ(self):
        ids = np.arange(1000)
        assert not np.array_equal(
            prf_uniforms(7, ids, slot=0), prf_uniforms(7, ids, slot=1)
        )

    def test_batch_partition_invariance(self):
        """Any split of the id range yields the same values as one call."""
        ids = np.arange(5000)
        whole = prf_uniforms(3, ids)
        parts = np.concatenate(
            [prf_uniforms(3, ids[:17]), prf_uniforms(3, ids[17:1234]), prf_uniforms(3, ids[1234:])]
        )
        assert np.array_equal(whole, parts)

    def test_fresh_key_is_seed_deterministic(self):
        assert fresh_key(123) == fresh_key(123)
        assert fresh_key(123) != fresh_key(124)


class TestDistribution:
    def test_uniforms_in_unit_interval(self):
        draws = prf_uniforms(11, np.arange(100000))
        assert draws.min() >= 0.0
        assert draws.max() < 1.0
        assert abs(draws.mean() - 0.5) < 0.01

    def test_integers_cover_range_uniformly(self):
        draws = prf_integers(13, np.arange(60000), high=6)
        counts = np.bincount(draws, minlength=6)
        assert draws.min() >= 0 and draws.max() <= 5
        assert counts.min() > 0.9 * 10000

    def test_integers_rejects_nonpositive_high(self):
        with pytest.raises(ValueError):
            prf_integers(13, np.arange(10), high=0)

    def test_uint64_no_trivial_collisions(self):
        draws = prf_uint64(17, np.arange(100000))
        assert len(np.unique(draws)) == 100000


class TestMatrix:
    def test_matrix_columns_match_slots(self):
        """Column j of the matrix is exactly the slot-j stream."""
        ids = np.arange(500)
        matrix = prf_uniform_matrix(19, ids, n_columns=5)
        for column in range(5):
            assert np.array_equal(matrix[:, column], prf_uniforms(19, ids, slot=column))

    def test_matrix_rows_are_user_functions(self):
        """Any row subset equals the corresponding rows of the full matrix."""
        ids = np.arange(1000)
        full = prf_uniform_matrix(23, ids, n_columns=3)
        subset = prf_uniform_matrix(23, ids[250:750], n_columns=3)
        assert np.array_equal(full[250:750], subset)

    def test_matrix_rejects_nonpositive_columns(self):
        with pytest.raises(ValueError):
            prf_uniform_matrix(23, np.arange(10), n_columns=0)


class TestDeriveKey:
    def test_distinct_salts_distinct_keys(self):
        keys = {derive_key(99, salt) for salt in range(1000)}
        assert len(keys) == 1000

    def test_derived_streams_are_independent_enough(self):
        ids = np.arange(20000)
        a = prf_uniforms(derive_key(5, 0), ids)
        b = prf_uniforms(derive_key(5, 1), ids)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.02
