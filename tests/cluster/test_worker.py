"""ShardWorker protocol behaviour, driven in-thread over a real socket.

These tests need no OS processes: the worker serves from a background thread
(exactly like the gateway tests) and a :class:`GatewayClient` speaks the
NDJSON ops to it.  The supervisor/coordinator machinery is exercised
separately in ``test_cluster_end_to_end``.
"""

import json
import urllib.request

import numpy as np
import pytest

from repro.cluster import ShardWorker
from repro.core.config import PrivShapeConfig
from repro.exceptions import ServerError
from repro.server import batch_id_for, serve_in_thread
from repro.service import EncodedPopulation, PrivShapeEngine, ShardedAggregator
from repro.service.client import ClientReporter

SEQUENCES = [tuple("abcd")] * 240 + [tuple("dcba")] * 100 + [tuple("bca")] * 60
CONFIG = dict(epsilon=6.0, top_k=2, alphabet_size=4, metric="sed", length_high=6)


@pytest.fixture(scope="module")
def population():
    return EncodedPopulation.from_sequences(
        SEQUENCES, PrivShapeConfig(**CONFIG).alphabet
    )


@pytest.fixture(scope="module")
def round_specs(population):
    """The first two RoundSpecs of a real engine run (index 0 and 1)."""
    engine = PrivShapeEngine(PrivShapeConfig(**CONFIG), rng=5)
    specs = []
    reporter = ClientReporter()
    while len(specs) < 2 and (spec := engine.open_round()) is not None:
        specs.append(spec)
        aggregator = ShardedAggregator(spec, n_shards=1)
        user_ids = np.arange(population.n_users, dtype=np.int64)
        aggregator.consume(
            reporter.make_reports(spec, population.take(user_ids), user_ids)
        )
        engine.close_round(spec, aggregator.finalize_round())
    assert len(specs) == 2
    return specs


def _batches(population, spec, start, stop, batch_size):
    """(batch, batch_id) pairs covering the user-id slice ``[start, stop)``."""
    reporter = ClientReporter()
    out = []
    for user_ids, batch_population in population.iter_range(start, stop, batch_size):
        out.append(
            (
                reporter.make_reports(spec, batch_population, user_ids),
                batch_id_for(spec.index, user_ids[0], user_ids[-1] + 1),
            )
        )
    return out


def _open(client, spec, start, stop):
    return client.request(
        {"op": "open_round", "round": spec.to_dict(), "start": start, "stop": stop}
    )


class TestRoundLifecycle:
    def test_open_report_collect_matches_direct_aggregation(
        self, population, round_specs
    ):
        """The collected state is bit-identical to aggregating the same
        batches directly — the worker adds transport, not arithmetic."""
        spec = round_specs[0]
        batches = _batches(population, spec, 0, 200, 64)
        reference = ShardedAggregator(spec, n_shards=2)
        for batch, _ in batches:
            reference.consume(batch)

        worker = ShardWorker(worker_index=3, n_shards=2)
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                ack = _open(client, spec, 0, 200)
                assert ack["slice"] == [0, 200] and ack["worker_index"] == 3
                for batch, batch_id in batches:
                    assert client.report(batch, batch_id)["accepted"] is True
                collected = client.request({"op": "collect", "round": spec.index})
        assert collected["reports"] == 200
        assert collected["state"] == reference.merged().to_state()

    def test_hello_reports_role_and_slice(self, round_specs):
        worker = ShardWorker(worker_index=1)
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                hello = client.hello()
                assert hello["role"] == "shard_worker"
                assert hello["round"] is None
                _open(client, round_specs[0], 10, 20)
                assert client.hello()["slice"] == [10, 20]

    def test_reopen_same_round_is_idempotent(self, round_specs):
        worker = ShardWorker()
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, round_specs[0], 0, 50)
                assert _open(client, round_specs[0], 0, 50)["ok"] is True

    def test_reopen_with_different_slice_rejected(self, round_specs):
        worker = ShardWorker()
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, round_specs[0], 0, 50)
                with pytest.raises(ServerError, match="different"):
                    _open(client, round_specs[0], 0, 60)

    def test_stale_round_rejected_newer_round_swaps(
        self, population, round_specs
    ):
        spec0, spec1 = round_specs
        worker = ShardWorker()
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, spec0, 0, 100)
                batch, batch_id = _batches(population, spec0, 0, 100, 100)[0]
                client.report(batch, batch_id)
                # Moving to the newer round abandons round 0's state...
                _open(client, spec1, 0, 100)
                status = client.status()
                assert status["round"] == spec1.index
                assert status["reports_in_round"] == 0
                # ...and the old round can never come back.
                with pytest.raises(ServerError, match="stale"):
                    _open(client, spec0, 0, 100)


class TestRejections:
    def test_report_without_open_round_rejected(self, population, round_specs):
        worker = ShardWorker()
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                batch, batch_id = _batches(population, round_specs[0], 0, 40, 40)[0]
                with pytest.raises(ServerError, match="no open round"):
                    client.report(batch, batch_id)

    def test_batch_outside_slice_rejected(self, population, round_specs):
        """Slice ownership is enforced: a misrouted batch is an error, not a
        silent double count waiting to happen."""
        spec = round_specs[0]
        worker = ShardWorker()
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, spec, 0, 100)
                stray, stray_id = _batches(population, spec, 90, 130, 40)[0]
                with pytest.raises(ServerError, match="outside worker"):
                    client.report(stray, stray_id)
                status = client.status()
        assert status["rejected_requests"] == 1
        assert status["total_reports"] == 0

    def test_wrong_round_batch_rejected(self, population, round_specs):
        spec0, spec1 = round_specs
        worker = ShardWorker()
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, spec1, 0, 100)
                old, old_id = _batches(population, spec0, 0, 40, 40)[0]
                with pytest.raises(ServerError, match="does not"):
                    client.report(old, old_id)

    def test_collect_wrong_round_rejected(self, round_specs):
        worker = ShardWorker()
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, round_specs[0], 0, 10)
                with pytest.raises(ServerError, match="collect for round"):
                    client.request({"op": "collect", "round": 7})

    def test_duplicate_batches_counted_once(self, population, round_specs):
        spec = round_specs[0]
        worker = ShardWorker()
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, spec, 0, 80)
                batch, batch_id = _batches(population, spec, 0, 80, 80)[0]
                assert client.report(batch, batch_id)["accepted"] is True
                replay = client.report(batch, batch_id)
                assert replay["accepted"] is False and replay["reports"] == 0
                collected = client.request({"op": "collect", "round": spec.index})
        assert collected["reports"] == 80


class TestDurability:
    def test_checkpoint_boot_replay_is_exact(
        self, population, round_specs, tmp_path
    ):
        """Kill after a checkpoint, boot from it, replay the slice from the
        top: checkpointed batches dedup, lost ones re-accumulate — the
        collected state equals an uninterrupted run's."""
        spec = round_specs[0]
        batches = _batches(population, spec, 0, 160, 40)
        half = len(batches) // 2
        reference = ShardedAggregator(spec, n_shards=2)
        for batch, _ in batches:
            reference.consume(batch)

        checkpoint_dir = str(tmp_path / "worker-0")
        worker = ShardWorker(n_shards=2, checkpoint_dir=checkpoint_dir)
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, spec, 0, 160)
                for batch, batch_id in batches[:half]:
                    client.report(batch, batch_id)
                client.checkpoint()
        # The worker object dies here; everything since the checkpoint — in
        # this case nothing, the second half was never sent — must come back
        # from disk plus the client's deterministic replay.
        revived = ShardWorker.boot(checkpoint_dir, n_shards=2)
        assert revived.restored is True
        with serve_in_thread(revived) as handle:
            with handle.client() as client:
                _open(client, spec, 0, 160)  # idempotent heal
                duplicates = 0
                for batch, batch_id in batches:
                    if not client.report(batch, batch_id)["accepted"]:
                        duplicates += 1
                collected = client.request({"op": "collect", "round": spec.index})
        assert duplicates == half
        assert collected["reports"] == 160
        assert collected["state"] == reference.merged().to_state()

    def test_boot_without_checkpoint_is_fresh(self, tmp_path):
        worker = ShardWorker.boot(str(tmp_path / "empty"), worker_index=2)
        assert worker.restored is False
        assert worker.worker_index == 2

    def test_checkpoint_every_writes_unprompted(
        self, population, round_specs, tmp_path
    ):
        spec = round_specs[0]
        worker = ShardWorker(
            checkpoint_dir=str(tmp_path / "auto"), checkpoint_every=2
        )
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, spec, 0, 120)
                for batch, batch_id in _batches(population, spec, 0, 120, 30):
                    client.report(batch, batch_id)
                status = client.status()
        assert status["checkpoints_written"] >= 2
        assert status["checkpoint_lag_batches"] < 2


class TestObservability:
    def test_status_payload_fields(self, population, round_specs):
        spec = round_specs[0]
        worker = ShardWorker(worker_index=1, n_shards=3)
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, spec, 0, 90)
                for batch, batch_id in _batches(population, spec, 0, 90, 45):
                    client.report(batch, batch_id)
                status = client.status()
        assert status["role"] == "shard_worker"
        assert status["worker_index"] == 1
        assert status["slice"] == [0, 90]
        assert status["total_reports"] == 90
        assert len(status["queue_depths"]) == 3
        assert status["reports_per_second"] > 0
        assert status["restored"] is False

    def test_http_status_endpoint(self, round_specs):
        worker = ShardWorker(worker_index=5)
        with serve_in_thread(worker) as handle:
            with handle.client() as client:
                _open(client, round_specs[0], 3, 9)
            url = f"http://{handle.host}:{handle.port}/status"
            payload = json.load(urllib.request.urlopen(url, timeout=30))
        assert payload["ok"] is True
        assert payload["status"]["worker_index"] == 5
        assert payload["status"]["slice"] == [3, 9]
