"""Whole-cluster acceptance: supervised OS processes, byte-identical results.

The bar mirrors the gateway's: a run driven through the coordinator/worker
topology — including a mid-round ``SIGKILL`` of a shard worker — produces
byte-identical shape estimates to the offline ``PrivShape.extract()`` under
the same PRF seed.  Population sizes stay small; the point is topology and
crash recovery, not throughput (``benchmarks/test_cluster_throughput.py``
covers scale).
"""

import pytest

from repro.cluster import ChaosKill, launch_cluster, run_cluster_loadgen
from repro.core.config import PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.service import EncodedPopulation

SEQUENCES = [tuple("abcd")] * 180 + [tuple("dcba")] * 120 + [tuple("bca")] * 60
CONFIG = dict(epsilon=6.0, top_k=2, alphabet_size=4, metric="sed", length_high=6)
SEED = 5


@pytest.fixture(scope="module")
def offline_result():
    return PrivShape(PrivShapeConfig(**CONFIG)).extract(SEQUENCES, rng=SEED)


@pytest.fixture(scope="module")
def population():
    return EncodedPopulation.from_sequences(
        SEQUENCES, PrivShapeConfig(**CONFIG).alphabet
    )


def _assert_matches_offline(result_payload, offline):
    assert [tuple(s) for s in result_payload["shape_tuples"]] == offline.shapes
    assert result_payload["frequencies"] == offline.frequencies
    assert result_payload["estimated_length"] == offline.estimated_length


def test_cluster_run_matches_offline(offline_result, population):
    """Two supervised worker processes, zero faults: exact equivalence, and
    the coordinator's status sees every worker as healthy."""
    with launch_cluster(
        PrivShapeConfig(**CONFIG), n_users=population.n_users, n_workers=2, rng=SEED
    ) as cluster:
        with cluster.client() as client:
            status = client.status()
            assert status["role"] == "coordinator"
            assert status["n_workers"] == 2
            assert all(worker["alive"] for worker in status["workers"])
            assert all(
                worker["status"]["role"] == "shard_worker"
                for worker in status["workers"]
            )
        stats = run_cluster_loadgen(
            cluster.host, cluster.port, population, batch_size=64
        )
    _assert_matches_offline(stats.result, offline_result)
    assert stats.total_reports == population.n_users
    assert stats.retries == 0
    assert stats.server_status["restarts"] == [0, 0]


def test_worker_kill_mid_round_is_invisible(offline_result, population):
    """SIGKILL a worker mid-round-1: the supervisor restarts it from its
    checkpoint, the loadgen replays the slice, and the final estimates are
    byte-identical — with every user still counted exactly once."""
    chaos = ChaosKill(round_index=1, worker_index=0, after_batches=1)
    with launch_cluster(
        PrivShapeConfig(**CONFIG),
        n_users=population.n_users,
        n_workers=2,
        rng=SEED,
        checkpoint_every=4,
    ) as cluster:
        stats = run_cluster_loadgen(
            cluster.host, cluster.port, population, batch_size=64, chaos=chaos
        )
        restarts = list(cluster.supervisor.restarts)
    assert chaos.fired, "the fault injector never fired"
    assert restarts[0] >= 1, "the supervisor never restarted the killed worker"
    assert stats.retries >= 1
    _assert_matches_offline(stats.result, offline_result)
    assert stats.total_reports == population.n_users


def test_population_size_mismatch_rejected(population):
    from repro.exceptions import ConfigurationError

    with launch_cluster(
        PrivShapeConfig(**CONFIG), n_users=99, n_workers=2, rng=SEED
    ) as cluster:
        with pytest.raises(ConfigurationError, match="sized for"):
            run_cluster_loadgen(cluster.host, cluster.port, population)


def test_cluster_backend_runs_shapelet_task():
    """task="shapelet" through the cluster topology fingerprints like inline."""
    from repro.api import DataSpec, ExperimentSpec, PrivacySpec, SAXSpec

    spec = ExperimentSpec(
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=6.0),
        sax=SAXSpec(alphabet_size=4),
    )
    data = DataSpec(source="trace", n_users=300, seed=7)
    inline = spec.run(data, task="shapelet", seed=SEED, evaluation_size=100)
    clustered = spec.run(data, task="shapelet", backend="cluster", seed=SEED,
                         evaluation_size=100, workers=2, batch_size=128)
    assert clustered.backend == "cluster"
    assert clustered.fingerprint() == inline.fingerprint()
    assert clustered.metrics["accuracy"] == inline.metrics["accuracy"]
