"""ClusterSpec routing arithmetic: the partition law every client relies on."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterSpec, WorkerAddress
from repro.exceptions import ConfigurationError
from repro.service.population import worker_slices


def _cluster(n_workers: int) -> ClusterSpec:
    return ClusterSpec(
        tuple(
            WorkerAddress(index=i, host="127.0.0.1", port=9000 + i)
            for i in range(n_workers)
        )
    )


class TestValidation:
    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            ClusterSpec(())

    def test_non_contiguous_indexes_rejected(self):
        with pytest.raises(ConfigurationError, match="contiguous"):
            ClusterSpec(
                (
                    WorkerAddress(index=0, host="h", port=1),
                    WorkerAddress(index=2, host="h", port=2),
                )
            )

    def test_negative_population_rejected(self):
        with pytest.raises(ConfigurationError, match="n_users"):
            _cluster(2).assignments(-1)


class TestAssignments:
    @settings(deadline=None, max_examples=50)
    @given(
        n_users=st.integers(min_value=0, max_value=5000),
        n_workers=st.integers(min_value=1, max_value=12),
    )
    def test_assignments_partition_the_population(self, n_users, n_workers):
        """Contiguous, disjoint, covering — for every (population, topology)."""
        assignments = _cluster(n_workers).assignments(n_users)
        assert len(assignments) == n_workers
        cursor = 0
        for start, stop in assignments:
            assert start == cursor
            assert stop >= start
            cursor = stop
        assert cursor == n_users

    @settings(deadline=None, max_examples=50)
    @given(
        n_users=st.integers(min_value=1, max_value=5000),
        n_workers=st.integers(min_value=1, max_value=12),
    )
    def test_non_empty_assignments_equal_worker_slices(self, n_users, n_workers):
        """Cluster routing uses the exact slice arithmetic of the loadgen
        fan-out, so the same user always lands on the same worker index."""
        assignments = _cluster(n_workers).assignments(n_users)
        assert [s for s in assignments if s[1] > s[0]] == worker_slices(
            n_users, n_workers
        )

    @settings(deadline=None, max_examples=25)
    @given(
        n_users=st.integers(min_value=1, max_value=500),
        n_workers=st.integers(min_value=1, max_value=7),
    )
    def test_worker_for_agrees_with_assignments(self, n_users, n_workers):
        cluster = _cluster(n_workers)
        assignments = cluster.assignments(n_users)
        for user_id in range(n_users):
            owner = cluster.worker_for(user_id, n_users)
            start, stop = assignments[owner.index]
            assert start <= user_id < stop

    def test_worker_for_outside_population_rejected(self):
        with pytest.raises(ConfigurationError, match="outside population"):
            _cluster(2).worker_for(10, 10)


class TestPlumbing:
    def test_json_round_trip(self):
        cluster = _cluster(3).with_pid(1, 4242)
        restored = ClusterSpec.from_json(cluster.to_json())
        assert restored == cluster
        assert restored[1].pid == 4242

    def test_with_pid_replaces_only_one_worker(self):
        cluster = _cluster(3)
        updated = cluster.with_pid(2, 99)
        assert updated[2].pid == 99
        assert updated[0].pid is None and updated[1].pid is None
        assert cluster[2].pid is None  # original untouched (frozen)

    def test_iteration_and_len(self):
        cluster = _cluster(4)
        assert cluster.n_workers == 4
        assert [w.index for w in cluster] == [0, 1, 2, 3]
