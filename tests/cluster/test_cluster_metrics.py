"""Cluster observability: worker scrapes and the coordinator's merged view."""

import urllib.request

import pytest

from repro.cluster import launch_cluster, run_cluster_loadgen
from repro.core.config import PrivShapeConfig
from repro.obs.promtext import CONTENT_TYPE, parse_prometheus_text
from repro.service import EncodedPopulation

SEQUENCES = [tuple("abcd")] * 180 + [tuple("dcba")] * 120 + [tuple("bca")] * 60
CONFIG = dict(epsilon=6.0, top_k=2, alphabet_size=4, metric="sed", length_high=6)
SEED = 5


@pytest.fixture(scope="module")
def population():
    return EncodedPopulation.from_sequences(
        SEQUENCES, PrivShapeConfig(**CONFIG).alphabet
    )


def _scrape(host, port):
    response = urllib.request.urlopen(
        f"http://{host}:{port}/metrics", timeout=30
    )
    assert response.headers["Content-Type"] == CONTENT_TYPE
    return parse_prometheus_text(response.read().decode())


def test_worker_and_coordinator_scrapes(population):
    with launch_cluster(
        PrivShapeConfig(**CONFIG),
        n_users=population.n_users,
        n_workers=2,
        rng=SEED,
    ) as cluster:
        stats = run_cluster_loadgen(
            cluster.host, cluster.port, population, batch_size=64
        )
        assert stats.total_reports == population.n_users

        # Each shard worker serves its own valid exposition on its own port.
        addresses = cluster.supervisor.cluster_spec().workers
        per_worker_reports = []
        for address in addresses:
            families = _scrape(address.host, address.port)
            assert families["privshape_worker_restored"].sample_values() == [0]
            assert families["privshape_slice_users"].sample_values()[0] > 0
            per_worker_reports.append(
                families["privshape_reports_total"].sample_values()[0]
            )
        assert sum(per_worker_reports) == population.n_users

        # The coordinator's scrape merges its own families with every
        # worker's, tagging worker samples with a worker="<index>" label.
        merged = _scrape(cluster.host, cluster.port)
        reports = merged["privshape_reports_total"]
        by_worker = {
            sample.labels.get("worker"): sample.value
            for sample in reports.samples
        }
        assert by_worker[None] == population.n_users  # coordinator's own
        assert by_worker["0"] + by_worker["1"] == population.n_users
        assert merged["privshape_cluster_workers"].sample_values() == [2]
        assert merged["privshape_worker_restarts"].sample_values() == [0]
