"""Tests for the augmentation stand-in for the paper's generative augmentation."""

import numpy as np
import pytest

from repro.datasets.augmentation import augment_dataset, augment_series
from repro.datasets.base import LabeledDataset
from repro.sax.compressive import CompressiveSAX


def _seed_dataset() -> LabeledDataset:
    t = np.linspace(0, 2 * np.pi, 120)
    return LabeledDataset(
        series=[np.sin(t), np.cos(t), np.sin(t) * 1.1, np.cos(t) * 0.9],
        labels=np.array([0, 1, 0, 1]),
        name="seed",
    )


class TestAugmentSeries:
    def test_output_length_default(self):
        out = augment_series(np.sin(np.linspace(0, 6, 50)), rng=0)
        assert out.size == 50

    def test_output_length_override(self):
        out = augment_series(np.sin(np.linspace(0, 6, 50)), length=80, rng=0)
        assert out.size == 80

    def test_no_augmentation_is_identity(self):
        series = np.sin(np.linspace(0, 6, 64))
        out = augment_series(series, warp_strength=0.0, scale_sigma=0.0, jitter_sigma=0.0, rng=0)
        assert np.allclose(out, series, atol=1e-9)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            augment_series([1.0, 2.0, 3.0], length=1)

    def test_shape_preserved_under_warping(self):
        """Augmentation must not change the Compressive-SAX essential shape (usually)."""
        transformer = CompressiveSAX(alphabet_size=4, segment_length=10)
        base = np.concatenate([np.linspace(-2, 2, 100), np.linspace(2, -2, 100)])
        base_shape = transformer.transform(base)
        rng = np.random.default_rng(3)
        matches = sum(
            transformer.transform(
                augment_series(base, warp_strength=0.1, scale_sigma=0.05, jitter_sigma=0.02, rng=rng)
            )
            == base_shape
            for _ in range(20)
        )
        assert matches >= 15


class TestAugmentDataset:
    def test_size_and_balance(self):
        augmented = augment_dataset(_seed_dataset(), n_instances=50, rng=0)
        assert len(augmented) == 50
        counts = np.bincount(augmented.labels)
        assert abs(counts[0] - counts[1]) <= 1

    def test_metadata_marks_augmentation(self):
        augmented = augment_dataset(_seed_dataset(), n_instances=10, rng=1)
        assert augmented.metadata["augmented"] is True

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            augment_dataset(_seed_dataset(), n_instances=0)

    def test_length_override(self):
        augmented = augment_dataset(_seed_dataset(), n_instances=8, length=60, rng=2)
        assert all(s.size == 60 for s in augmented.series)
