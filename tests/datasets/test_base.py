"""Tests for the LabeledDataset container."""

import numpy as np
import pytest

from repro.datasets.base import LabeledDataset
from repro.exceptions import DataShapeError, EmptyDatasetError


def _toy_dataset(n_per_class=10, n_classes=3, length=20, seed=0) -> LabeledDataset:
    rng = np.random.default_rng(seed)
    series = []
    labels = []
    for label in range(n_classes):
        for _ in range(n_per_class):
            series.append(rng.normal(loc=label, size=length))
            labels.append(label)
    return LabeledDataset(series=series, labels=np.array(labels), name="toy")


class TestConstruction:
    def test_basic_properties(self):
        dataset = _toy_dataset()
        assert len(dataset) == 30
        assert dataset.n_classes == 3
        assert list(dataset.classes) == [0, 1, 2]

    def test_iteration_yields_pairs(self):
        dataset = _toy_dataset(n_per_class=2, n_classes=2)
        pairs = list(dataset)
        assert len(pairs) == 4
        series, label = pairs[0]
        assert isinstance(series, np.ndarray)
        assert isinstance(int(label), int)

    def test_empty_rejected(self):
        with pytest.raises(EmptyDatasetError):
            LabeledDataset(series=[], labels=np.array([]))

    def test_length_mismatch_rejected(self):
        with pytest.raises(DataShapeError):
            LabeledDataset(series=[np.ones(3)], labels=np.array([0, 1]))

    def test_empty_series_rejected(self):
        with pytest.raises(DataShapeError):
            LabeledDataset(series=[np.array([])], labels=np.array([0]))


class TestSubsetting:
    def test_class_subset(self):
        dataset = _toy_dataset()
        subset = dataset.class_subset(1)
        assert len(subset) == 10
        assert set(subset.labels) == {1}

    def test_class_subset_missing_label(self):
        with pytest.raises(KeyError):
            _toy_dataset().class_subset(99)

    def test_subsample_size_and_stratification(self):
        dataset = _toy_dataset(n_per_class=20)
        subset = dataset.subsample(30, rng=0)
        assert len(subset) == 30
        counts = np.bincount(subset.labels)
        assert counts.min() >= 9

    def test_subsample_larger_than_dataset(self):
        dataset = _toy_dataset(n_per_class=5)
        assert len(dataset.subsample(1000, rng=0)) == len(dataset)

    def test_subsample_invalid(self):
        with pytest.raises(ValueError):
            _toy_dataset().subsample(0)

    def test_shuffled_preserves_pairs(self):
        dataset = _toy_dataset(n_per_class=4)
        shuffled = dataset.shuffled(rng=1)
        assert len(shuffled) == len(dataset)
        assert sorted(shuffled.labels.tolist()) == sorted(dataset.labels.tolist())


class TestSplitAndPrototypes:
    def test_train_test_split_partitions(self):
        dataset = _toy_dataset(n_per_class=10)
        train, test = dataset.train_test_split(test_fraction=0.3, rng=0)
        assert len(train) + len(test) == len(dataset)
        assert set(test.labels) == set(dataset.classes)

    def test_split_invalid_fraction(self):
        with pytest.raises(ValueError):
            _toy_dataset().train_test_split(test_fraction=1.5)

    def test_class_prototypes_shapes(self):
        dataset = _toy_dataset(n_per_class=8, length=15)
        prototypes = dataset.class_prototypes()
        assert set(prototypes) == {0, 1, 2}
        assert all(p.size == 15 for p in prototypes.values())

    def test_class_prototypes_are_means(self):
        dataset = _toy_dataset(n_per_class=50, length=10, seed=3)
        prototypes = dataset.class_prototypes()
        assert prototypes[2].mean() > prototypes[0].mean()

    def test_prototypes_require_equal_lengths(self):
        dataset = LabeledDataset(
            series=[np.ones(5), np.ones(7)], labels=np.array([0, 0]), name="ragged"
        )
        with pytest.raises(DataShapeError):
            dataset.class_prototypes()
