"""Tests for the UCR archive file loader."""

import numpy as np
import pytest

from repro.datasets.ucr import load_ucr_tsv
from repro.exceptions import DataShapeError


class TestLoadUcrTsv:
    def test_tab_separated(self, tmp_path):
        path = tmp_path / "toy_TRAIN.tsv"
        path.write_text("1\t0.1\t0.2\t0.3\n2\t1.0\t1.1\t1.2\n1\t0.0\t0.1\t0.2\n")
        dataset = load_ucr_tsv(path)
        assert len(dataset) == 3
        assert dataset.n_classes == 2
        assert np.allclose(dataset.series[1], [1.0, 1.1, 1.2])

    def test_labels_remapped_to_consecutive_ints(self, tmp_path):
        path = tmp_path / "toy.tsv"
        path.write_text("5\t0.0\t1.0\n-1\t1.0\t0.0\n")
        dataset = load_ucr_tsv(path)
        assert sorted(dataset.labels.tolist()) == [0, 1]
        assert dataset.metadata["original_labels"] == [-1.0, 5.0]

    def test_comma_separated(self, tmp_path):
        path = tmp_path / "toy.csv"
        path.write_text("1,0.5,0.6\n2,0.7,0.8\n")
        dataset = load_ucr_tsv(path)
        assert len(dataset) == 2

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "toy.tsv"
        path.write_text("1\t0.1\t0.2\n\n2\t0.3\t0.4\n\n")
        assert len(load_ucr_tsv(path)) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_ucr_tsv(tmp_path / "does_not_exist.tsv")

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\n")
        with pytest.raises(DataShapeError):
            load_ucr_tsv(path)

    def test_non_numeric_field(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1\tfoo\tbar\n")
        with pytest.raises(DataShapeError):
            load_ucr_tsv(path)

    def test_custom_name(self, tmp_path):
        path = tmp_path / "Symbols_TRAIN.tsv"
        path.write_text("1\t0.1\t0.2\n2\t0.3\t0.4\n")
        assert load_ucr_tsv(path, name="Symbols").name == "Symbols"


class TestGzipAndPadding:
    def test_gzip_compressed_file(self, tmp_path):
        import gzip

        path = tmp_path / "toy.tsv.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("1\t0.1\t0.2\t0.3\n2\t1.0\t1.1\t1.2\n")
        dataset = load_ucr_tsv(path)
        assert len(dataset) == 2
        assert np.allclose(dataset.series[1], [1.0, 1.1, 1.2])

    def test_gzip_detected_by_magic_not_extension(self, tmp_path):
        import gzip

        path = tmp_path / "toy.tsv"  # compressed despite the plain name
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("1\t0.5\t0.6\n")
        dataset = load_ucr_tsv(path)
        assert np.allclose(dataset.series[0], [0.5, 0.6])

    def test_trailing_nan_padding_stripped(self, tmp_path):
        """Variable-length 2018-archive rows pad with trailing NaNs."""
        path = tmp_path / "toy.tsv"
        path.write_text(
            "1\t0.1\t0.2\t0.3\tNaN\tNaN\n"
            "2\t1.0\t1.1\t1.2\t1.3\t1.4\n"
        )
        dataset = load_ucr_tsv(path)
        assert dataset.series[0].size == 3
        assert dataset.series[1].size == 5
        assert not any(np.isnan(s).any() for s in dataset.series)

    def test_trailing_whitespace_tolerated(self, tmp_path):
        path = tmp_path / "toy.tsv"
        path.write_text("1\t0.1\t0.2\t\t\n2\t0.3\t0.4  \n")
        dataset = load_ucr_tsv(path)
        assert dataset.series[0].size == 2
        assert np.allclose(dataset.series[1], [0.3, 0.4])

    def test_all_nan_series_rejected(self, tmp_path):
        path = tmp_path / "toy.tsv"
        path.write_text("1\tNaN\tNaN\n")
        with pytest.raises(DataShapeError, match="entirely NaN"):
            load_ucr_tsv(path)

    def test_interior_nan_rejected(self, tmp_path):
        path = tmp_path / "toy.tsv"
        path.write_text("1\t0.1\tNaN\t0.3\n")
        with pytest.raises(DataShapeError, match="inside"):
            load_ucr_tsv(path)

    def test_nan_label_rejected(self, tmp_path):
        path = tmp_path / "toy.tsv"
        path.write_text("NaN\t0.1\t0.2\n")
        with pytest.raises(DataShapeError, match="label"):
            load_ucr_tsv(path)

    def test_gzip_nan_padding_combination(self, tmp_path):
        import gzip

        path = tmp_path / "var.tsv.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("1\t0.1\t0.2\tNaN\n2\t0.3\t0.4\t0.5\n")
        dataset = load_ucr_tsv(path, name="variable")
        assert dataset.name == "variable"
        assert [s.size for s in dataset.series] == [2, 3]
