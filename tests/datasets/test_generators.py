"""Tests for the synthetic dataset generators (Symbols-like, Trace-like, waves)."""

from collections import Counter

import numpy as np
import pytest

from repro.datasets.symbols import SYMBOLS_LENGTH, symbols_like
from repro.datasets.trace import TRACE_LENGTH, trace_like
from repro.datasets.trigonometric import trigonometric_waves, trigonometric_waves_prefix
from repro.sax.compressive import CompressiveSAX


class TestSymbolsLike:
    def test_default_shape(self):
        dataset = symbols_like(n_instances=60, rng=0)
        assert len(dataset) == 60
        assert dataset.n_classes == 6
        assert all(s.size == SYMBOLS_LENGTH for s in dataset.series)

    def test_balanced_classes(self):
        dataset = symbols_like(n_instances=120, rng=1)
        counts = np.bincount(dataset.labels)
        assert counts.max() - counts.min() <= 1

    def test_series_are_normalized(self):
        dataset = symbols_like(n_instances=12, rng=2)
        for series in dataset.series:
            assert series.mean() == pytest.approx(0.0, abs=1e-8)
            assert series.std() == pytest.approx(1.0, abs=1e-6)

    def test_reproducible(self):
        a = symbols_like(n_instances=10, rng=5)
        b = symbols_like(n_instances=10, rng=5)
        assert all(np.allclose(x, y) for x, y in zip(a.series, b.series))

    def test_classes_have_distinct_dominant_shapes(self):
        """The within-class modal Compressive-SAX shape differs across classes."""
        dataset = symbols_like(n_instances=300, rng=3)
        transformer = CompressiveSAX(alphabet_size=6, segment_length=25)
        modal = {}
        for label in dataset.classes:
            shapes = [
                transformer.transform_string(s)
                for s, y in zip(dataset.series, dataset.labels)
                if y == label
            ]
            modal[label] = Counter(shapes).most_common(1)[0][0]
        assert len(set(modal.values())) == dataset.n_classes

    def test_too_many_classes_rejected(self):
        with pytest.raises(ValueError):
            symbols_like(n_instances=10, n_classes=7)

    def test_custom_length(self):
        dataset = symbols_like(n_instances=6, length=100, rng=0)
        assert all(s.size == 100 for s in dataset.series)


class TestTraceLike:
    def test_default_shape(self):
        dataset = trace_like(n_instances=30, rng=0)
        assert len(dataset) == 30
        assert dataset.n_classes == 3
        assert all(s.size == TRACE_LENGTH for s in dataset.series)

    def test_classes_have_distinct_dominant_shapes(self):
        dataset = trace_like(n_instances=300, rng=1)
        transformer = CompressiveSAX(alphabet_size=4, segment_length=10)
        modal = {}
        for label in dataset.classes:
            shapes = [
                transformer.transform_string(s)
                for s, y in zip(dataset.series, dataset.labels)
                if y == label
            ]
            modal[label] = Counter(shapes).most_common(1)[0][0]
        assert len(set(modal.values())) == dataset.n_classes

    def test_invalid_onset_range(self):
        with pytest.raises(ValueError):
            trace_like(n_instances=10, onset_low=0.8, onset_high=0.2)

    def test_too_many_classes_rejected(self):
        with pytest.raises(ValueError):
            trace_like(n_instances=10, n_classes=4)

    def test_reproducible(self):
        a = trace_like(n_instances=9, rng=7)
        b = trace_like(n_instances=9, rng=7)
        assert all(np.allclose(x, y) for x, y in zip(a.series, b.series))


class TestTrigonometricWaves:
    def test_lengths_and_labels(self):
        dataset = trigonometric_waves(n_instances=40, length=200, rng=0)
        assert len(dataset) == 40
        assert all(s.size == 200 for s in dataset.series)
        assert set(dataset.labels) == {0, 1}

    def test_sine_and_cosine_differ(self):
        dataset = trigonometric_waves(n_instances=2, length=300, noise_sigma=0.0, phase_jitter=0.0, rng=0)
        sine, cosine = dataset.series
        assert not np.allclose(sine, cosine)

    def test_prefix_variant_length(self):
        dataset = trigonometric_waves_prefix(n_instances=10, prefix_length=250, rng=0)
        assert all(s.size == 250 for s in dataset.series)

    def test_prefix_cannot_exceed_full(self):
        with pytest.raises(ValueError):
            trigonometric_waves_prefix(n_instances=4, prefix_length=1200, full_length=1000)

    def test_full_period_prefix_matches_wave(self):
        """A prefix spanning the whole period is the same problem as the full wave."""
        full = trigonometric_waves_prefix(
            n_instances=4, prefix_length=1000, full_length=1000, noise_sigma=0.0, phase_jitter=0.0, rng=1
        )
        wave = trigonometric_waves(n_instances=4, length=1000, noise_sigma=0.0, phase_jitter=0.0, rng=1)
        assert all(np.allclose(a, b, atol=1e-9) for a, b in zip(full.series, wave.series))
