"""Shared pytest fixtures for the PrivShape reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import symbols_like, trace_like
from repro.sax.compressive import CompressiveSAX


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A session-wide deterministic generator for tests that just need randomness."""
    return np.random.default_rng(20240417)


@pytest.fixture(scope="session")
def small_symbols_dataset():
    """A small Symbols-like dataset reused by integration tests."""
    return symbols_like(n_instances=240, rng=11)


@pytest.fixture(scope="session")
def small_trace_dataset():
    """A small Trace-like dataset reused by integration tests."""
    return trace_like(n_instances=240, rng=12)


@pytest.fixture(scope="session")
def symbols_transformer() -> CompressiveSAX:
    """The paper's Symbols-task Compressive SAX parameters (t=6, w=25)."""
    return CompressiveSAX(alphabet_size=6, segment_length=25)


@pytest.fixture(scope="session")
def trace_transformer() -> CompressiveSAX:
    """The paper's Trace-task Compressive SAX parameters (t=4, w=10)."""
    return CompressiveSAX(alphabet_size=4, segment_length=10)


@pytest.fixture(scope="session")
def symbols_sequences(small_symbols_dataset, symbols_transformer):
    """Compressed sequences of the small Symbols-like dataset."""
    return symbols_transformer.transform_dataset(small_symbols_dataset.series)


@pytest.fixture(scope="session")
def trace_sequences(small_trace_dataset, trace_transformer):
    """Compressed sequences of the small Trace-like dataset."""
    return trace_transformer.transform_dataset(small_trace_dataset.series)
