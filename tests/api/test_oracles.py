"""Tests for the frequency-oracle registry and analytic auto-selection."""

import numpy as np
import pytest

from repro.analysis.variance import (
    grr_variance,
    olh_variance,
    oue_variance,
    sue_variance,
)
from repro.api import (
    available_oracles,
    make_frequency_oracle,
    oracle_variances,
    select_frequency_oracle,
)
from repro.exceptions import ConfigurationError
from repro.ldp.base import FrequencyOracle
from repro.ldp.grr import GeneralizedRandomizedResponse
from repro.ldp.olh import OptimizedLocalHashing
from repro.ldp.unary import UnaryEncoding


class TestOracleRegistry:
    def test_builtins_registered(self):
        assert available_oracles() == ("grr", "oue", "olh", "sue")

    def test_named_construction(self):
        domain = list("abcd")
        assert isinstance(make_frequency_oracle("grr", 1.0, domain),
                          GeneralizedRandomizedResponse)
        oue = make_frequency_oracle("oue", 1.0, domain)
        assert isinstance(oue, UnaryEncoding) and oue.optimized
        sue = make_frequency_oracle("sue", 1.0, domain)
        assert isinstance(sue, UnaryEncoding) and not sue.optimized
        assert isinstance(make_frequency_oracle("olh", 1.0, domain),
                          OptimizedLocalHashing)

    def test_oracles_preserve_domain(self):
        domain = [("a", "b"), ("b", "a"), "__other__"]
        oracle = make_frequency_oracle("grr", 2.0, domain)
        assert oracle.domain == domain
        assert isinstance(oracle, FrequencyOracle)

    def test_unknown_oracle_error_lists_names(self):
        with pytest.raises(ConfigurationError, match="grr"):
            make_frequency_oracle("magic", 1.0, list("ab"))

    def test_variances_cover_every_oracle(self):
        variances = oracle_variances(1.0, 16, n=500)
        assert set(variances) == set(available_oracles())
        assert all(v > 0 for v in variances.values())


class TestAutoSelection:
    def test_auto_matches_closed_form_argmin(self):
        """`auto` must provably pick the variance-optimal oracle everywhere."""
        for epsilon in (0.5, 1.0, 2.0, 4.0):
            for domain_size in (2, 3, 6, 12, 30, 64, 256, 1024):
                chosen = select_frequency_oracle(epsilon, domain_size)
                variances = oracle_variances(epsilon, domain_size, n=1000)
                assert variances[chosen] == min(variances.values()), (
                    epsilon, domain_size, variances,
                )

    def test_small_domain_prefers_grr(self):
        # d = 2 at epsilon 1: GRR variance is far below OUE's.
        assert grr_variance(1.0, 2, 1000) < oue_variance(1.0, 1000)
        assert select_frequency_oracle(1.0, 2) == "grr"

    def test_large_domain_prefers_oue(self):
        assert grr_variance(1.0, 500, 1000) > oue_variance(1.0, 1000)
        assert select_frequency_oracle(1.0, 500) == "oue"

    def test_olh_ties_resolve_to_oue(self):
        # OLH shares OUE's closed-form variance; registration order breaks the
        # tie deterministically in OUE's favour.
        assert olh_variance(1.0, 1000) == oue_variance(1.0, 1000)
        for domain_size in (2, 64, 4096):
            assert select_frequency_oracle(1.0, domain_size) != "olh"

    def test_selection_independent_of_n(self):
        for n in (10, 1000, 10**6):
            assert select_frequency_oracle(2.0, 40, n=n) == select_frequency_oracle(2.0, 40)

    def test_auto_constructs_the_selected_oracle(self):
        small = make_frequency_oracle("auto", 1.0, list("ab"))
        assert isinstance(small, GeneralizedRandomizedResponse)
        large = make_frequency_oracle("auto", 1.0, list(range(500)))
        assert isinstance(large, UnaryEncoding)

    def test_boundary_consistent_with_classic_rule(self):
        """The classic d-1 < 3e^eps + 2 rule of thumb holds at the boundary."""
        epsilon = 1.0
        boundary = 3 * np.exp(epsilon) + 2
        assert select_frequency_oracle(epsilon, int(boundary) - 2) == "grr"
        assert select_frequency_oracle(epsilon, int(boundary) + 3) == "oue"


class TestSueVariance:
    def test_sue_never_beats_oue(self):
        # OUE minimizes unary-encoding variance; SUE must be no better.
        for epsilon in (0.5, 1.0, 2.0, 4.0):
            assert sue_variance(epsilon, 1000) >= oue_variance(epsilon, 1000)

    def test_matches_direct_formula(self):
        epsilon, n = 1.0, 1000
        e_half = np.exp(epsilon / 2)
        p = e_half / (e_half + 1)
        q = 1 - p
        expected = n * q * (1 - q) / (p - q) ** 2
        assert sue_variance(epsilon, n) == pytest.approx(expected)
