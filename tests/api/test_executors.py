"""Executor registry behaviour and the cross-backend equivalence guarantee.

The acceptance bar of the unified execution API: under one master seed,
``ExperimentSpec.run(backend=b)`` returns byte-identical estimates for every
built-in backend, and all of them equal the offline ``PrivShape.extract()``
reference.
"""

import pytest

from repro.api import (
    DataSpec,
    ExperimentSpec,
    PrivacySpec,
    RunResult,
    SAXSpec,
    available_executors,
    executor_registry,
    register_executor,
    run_spec,
)
from repro.api.data import RealizedData
from repro.api.executors import (
    ExecutionRequest,
    materialize_sequences,
    worker_slices,
)
from repro.core.privshape import PrivShape
from repro.exceptions import ConfigurationError, ExecutionError

SEED = 2024

#: Small enough for the multiprocess backends on a 1-core CI box, large
#: enough that every protocol round has participants.
DATA = DataSpec(source="synthetic", n_users=2500, seed=9)
SPEC = ExperimentSpec(
    mechanism="privshape",
    privacy=PrivacySpec(epsilon=6.0),
    sax=SAXSpec(alphabet_size=4),
)

#: Per-backend options: the sharded backend uses fork (cheap on CI), the
#: gateway gets two shards to exercise routed aggregation, the cluster boots
#: two supervised worker processes.
BACKEND_OPTIONS = {
    "inline": {"batch_size": 333},
    "sharded": {"shards": 2, "mp_context": "fork", "batch_size": 512},
    "gateway": {"shards": 2, "batch_size": 700},
    "cluster": {"workers": 2, "batch_size": 512},
}


@pytest.fixture(scope="module")
def offline_reference():
    """The offline extraction every backend must reproduce byte for byte."""
    realized = DATA.realize(SPEC)
    sequences = materialize_sequences(realized.population)
    return PrivShape(realized.spec.to_privshape_config()).extract(sequences, rng=SEED)


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["inline", "sharded", "gateway", "cluster"])
    def test_backend_matches_offline_extraction(self, offline_reference, backend):
        """inline == sharded == gateway == cluster == offline, byte for byte."""
        result = SPEC.run(DATA, backend=backend, seed=SEED,
                          **BACKEND_OPTIONS[backend])
        assert result.backend == backend
        assert result.shapes == ["".join(s) for s in offline_reference.shapes]
        assert result.frequencies == offline_reference.frequencies
        assert result.estimated_length == offline_reference.estimated_length
        assert result.accounting["per_population"] == \
            offline_reference.accountant.per_population()
        assert result.timings["total_reports"] == DATA.n_users

    @pytest.mark.parametrize("backend", ["sharded", "gateway", "cluster"])
    def test_fingerprint_identical_to_inline(self, backend):
        """The full deterministic projection matches, not just the shapes."""
        inline = SPEC.run(DATA, backend="inline", seed=SEED)
        other = SPEC.run(DATA, backend=backend, seed=SEED,
                         **BACKEND_OPTIONS[backend])
        assert other.fingerprint() == inline.fingerprint()

    def test_cluster_backend_survives_worker_kill(self):
        """A SIGKILLed shard worker mid-round leaves the fingerprint intact:
        the supervisor restarts it from its checkpoint and the loadgen
        replays the slice with idempotent batch ids."""
        inline = SPEC.run(DATA, backend="inline", seed=SEED)
        killed = SPEC.run(
            DATA, backend="cluster", seed=SEED, workers=2, batch_size=512,
            checkpoint_every=4, kill_round=1, kill_worker=0,
        )
        assert killed.fingerprint() == inline.fingerprint()
        assert killed.backend_info["restarts"][0] >= 1
        assert killed.timings["total_reports"] == DATA.n_users

    def test_subprocess_runs_cluster_task(self):
        """The subprocess route works for the evaluation tasks too."""
        spec = ExperimentSpec(
            mechanism="privshape",
            privacy=PrivacySpec(epsilon=6.0),
            sax=SAXSpec(alphabet_size=6, segment_length=25),
        )
        data = DataSpec(source="symbols", n_users=240, seed=11)
        child = spec.run(data, backend="subprocess", task="cluster", seed=0,
                         evaluation_size=60)
        inline = spec.run(data, backend="inline", task="cluster", seed=0,
                          evaluation_size=60)
        assert child.task == "cluster"
        assert child.metrics["ari"] == inline.metrics["ari"]
        assert child.estimates == inline.estimates

    def test_subprocess_matches_inline(self):
        """The CLI-backed child interpreter reproduces the inline run."""
        inline = SPEC.run(DATA, backend="inline", seed=SEED)
        child = SPEC.run(DATA, backend="subprocess", seed=SEED)
        assert child.backend == "subprocess"
        assert child.fingerprint() == inline.fingerprint()
        assert child.backend_info["inner_backend"] == "inline"

    def test_rounds_report_identical_totals(self):
        """Per-round accounting agrees across backends, levels included."""
        inline = SPEC.run(DATA, backend="inline", seed=SEED)
        sharded = SPEC.run(DATA, backend="sharded", seed=SEED,
                           **BACKEND_OPTIONS["sharded"])
        gateway = SPEC.run(DATA, backend="gateway", seed=SEED,
                           **BACKEND_OPTIONS["gateway"])
        reference = [
            (r["kind"], r["level"], r["reports"]) for r in inline.rounds
        ]
        for other in (sharded, gateway):
            assert [
                (r["kind"], r["level"], r["reports"]) for r in other.rounds
            ] == reference


class TestInlineBackend:
    def test_non_privshape_extraction_mechanism(self):
        """Any registered extraction mechanism runs inline."""
        spec = ExperimentSpec(mechanism="baseline", privacy=PrivacySpec(epsilon=6.0))
        result = spec.run(DataSpec(source="trace", n_users=400, seed=1), seed=3)
        assert result.task == "extract"
        assert result.estimates
        assert result.accounting["within_budget"] is True

    def test_sequences_list_input(self):
        """A plain list of symbol tuples is a valid population."""
        sequences = [tuple("abcd")] * 600 + [tuple("dcba")] * 400
        result = SPEC.run(sequences, seed=5)
        assert result.shapes
        assert result.spec.collection.top_k == 3

    def test_perturbation_mechanism_rejected_for_extract(self):
        spec = ExperimentSpec(mechanism="patternldp")
        with pytest.raises(ConfigurationError, match="perturbs raw series"):
            spec.run(DATA, seed=0)

    def test_cluster_task_through_run(self, small_symbols_dataset):
        spec = ExperimentSpec(
            mechanism="privshape",
            privacy=PrivacySpec(epsilon=6.0),
            sax=SAXSpec(alphabet_size=6, segment_length=25),
        )
        result = spec.run(
            small_symbols_dataset, task="cluster", seed=0, evaluation_size=100
        )
        assert result.task == "cluster"
        assert "ari" in result.metrics
        assert -1.0 <= result.metrics["ari"] <= 1.0

    def test_classify_task_needs_labels(self):
        with pytest.raises(ConfigurationError, match="class labels"):
            SPEC.run(DATA, task="classify", seed=0)


class TestExecutorRegistry:
    def test_builtins_registered(self):
        assert set(available_executors()) >= {
            "inline", "sharded", "gateway", "cluster", "subprocess",
        }

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            SPEC.run(DATA, backend="quantum", seed=0)

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError, match="task"):
            run_spec(SPEC, DATA, task="teleport", seed=0)

    def test_misspelled_option_rejected(self):
        """A typo'd backend knob raises instead of silently using defaults."""
        with pytest.raises(ConfigurationError, match="unknown or inert"):
            SPEC.run(DATA, seed=0, shard=8)

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="shards"):
            SPEC.run(DATA, backend="sharded", seed=0, shards=0,
                     mp_context="fork")

    def test_ucr_data_echo_carries_only_relevant_fields(self):
        echo = DataSpec(source="ucr", path="/tmp/x.tsv").describe()
        assert set(echo) == {"source", "name", "path"}

    def test_custom_executor_dispatches(self):
        """Downstream code can register a backend and reach it by name."""

        @register_executor("test-echo", "echo backend for the registry test")
        def _echo(request: ExecutionRequest) -> RunResult:
            return RunResult(task="extract", spec=request.spec,
                             backend="test-echo", seed=request.seed)

        try:
            result = SPEC.run(DATA, backend="test-echo", seed=123)
            assert result.backend == "test-echo"
            assert result.seed == 123
        finally:
            executor_registry.remove("test-echo")

    def test_gateway_requires_privshape(self):
        spec = ExperimentSpec(mechanism="baseline", privacy=PrivacySpec(epsilon=6.0))
        with pytest.raises(ConfigurationError, match="round-based"):
            spec.run(DataSpec(source="trace", n_users=300), backend="gateway", seed=0)

    def test_subprocess_requires_dataspec(self):
        with pytest.raises(ConfigurationError, match="DataSpec"):
            SPEC.run([tuple("abcd")] * 100, backend="subprocess", seed=0)

    def test_cluster_task_restricted_to_inline(self, small_symbols_dataset):
        with pytest.raises(ConfigurationError, match="inline"):
            SPEC.run(small_symbols_dataset, task="cluster", backend="gateway", seed=0)


class TestHelpers:
    def test_worker_slices_cover_and_disjoint(self):
        for n_users, workers in [(10, 3), (5, 8), (1000, 4)]:
            slices = worker_slices(n_users, workers)
            covered = [i for start, stop in slices for i in range(start, stop)]
            assert covered == list(range(n_users))

    def test_materialize_round_trips_population(self):
        realized = DATA.realize(SPEC)
        a = materialize_sequences(realized.population, batch_size=97)
        b = materialize_sequences(realized.population, batch_size=1000)
        assert a == b
        assert len(a) == DATA.n_users

    def test_realized_data_is_concrete(self):
        realized = DATA.realize(SPEC)
        assert isinstance(realized, RealizedData)
        assert realized.spec.collection.top_k == 3
        assert realized.spec.collection.length_high == DATA.template_length


class TestSubprocessFailures:
    def test_inner_backend_cannot_be_subprocess(self):
        with pytest.raises(ConfigurationError, match="inner_backend"):
            SPEC.run(DATA, backend="subprocess", seed=0,
                     inner_backend="subprocess")

    def test_child_failure_surfaces_stderr(self):
        bad = DataSpec(source="ucr", path="/nonexistent/file.tsv")
        with pytest.raises((ExecutionError, ConfigurationError)):
            SPEC.run(bad, backend="subprocess", seed=0, timeout=120)


class TestShapeletBackendEquivalence:
    """task="shapelet" keeps the cross-backend fingerprint guarantee.

    Extraction runs on the chosen backend (byte-identical already); the
    discovery/transform/classify stage is seeded by the master seed alone,
    so the full RunResult projection must agree everywhere.
    """

    SHAPELET_DATA = DataSpec(source="trace", n_users=300, seed=7)

    @pytest.fixture(scope="class")
    def inline_shapelet(self):
        return SPEC.run(self.SHAPELET_DATA, task="shapelet", seed=SEED,
                        evaluation_size=120)

    @pytest.mark.parametrize("backend", ["sharded", "gateway"])
    def test_fingerprint_identical_to_inline(self, inline_shapelet, backend):
        other = SPEC.run(self.SHAPELET_DATA, task="shapelet", backend=backend,
                         seed=SEED, evaluation_size=120,
                         **BACKEND_OPTIONS[backend])
        assert other.backend == backend
        assert other.fingerprint() == inline_shapelet.fingerprint()
        assert other.metrics["accuracy"] == \
            inline_shapelet.metrics["accuracy"]

    def test_subprocess_forwards_whole_task(self, inline_shapelet):
        child = SPEC.run(self.SHAPELET_DATA, task="shapelet",
                         backend="subprocess", seed=SEED, evaluation_size=120)
        assert child.task == "shapelet"
        assert child.fingerprint() == inline_shapelet.fingerprint()
        assert child.metrics["accuracy"] == \
            inline_shapelet.metrics["accuracy"]

    def test_estimates_match_plain_extraction(self, inline_shapelet):
        """The extraction phase is the same extraction task="extract" runs."""
        extract = SPEC.run(self.SHAPELET_DATA, task="extract", seed=SEED)
        assert inline_shapelet.estimates == extract.estimates
        assert inline_shapelet.estimated_length == extract.estimated_length
        assert inline_shapelet.accounting == extract.accounting
