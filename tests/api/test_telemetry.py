"""Telemetry options on run_spec/run_windows: summaries, traces, and the
fingerprint-safety gate (telemetry must never perturb RNG draw order)."""

import json

import pytest

from repro.api import DataSpec, ExperimentSpec, PrivacySpec, SAXSpec
from repro.api.results import RunResult
from repro.continual import WindowSpec
from repro.exceptions import ConfigurationError
from repro.obs import current_profiler, current_tracer

SEED = 2024
DATA = DataSpec(source="synthetic", n_users=2500, seed=9)
SPEC = ExperimentSpec(
    mechanism="privshape",
    privacy=PrivacySpec(epsilon=6.0),
    sax=SAXSpec(alphabet_size=4),
)

BACKEND_OPTIONS = {
    "inline": {"batch_size": 333},
    "sharded": {"shards": 2, "mp_context": "fork", "batch_size": 512},
    "gateway": {"shards": 2, "batch_size": 700},
    "cluster": {"workers": 2, "batch_size": 512},
}


@pytest.fixture(scope="module")
def plain_inline():
    return SPEC.run(DATA, backend="inline", seed=SEED, **BACKEND_OPTIONS["inline"])


class TestRunTelemetry:
    def test_default_run_has_no_telemetry_block(self, plain_inline):
        assert plain_inline.telemetry == {}

    def test_telemetry_summary_shape(self):
        result = SPEC.run(
            DATA, backend="inline", seed=SEED, telemetry=True,
            **BACKEND_OPTIONS["inline"],
        )
        telemetry = result.telemetry
        assert set(telemetry) == {"phases", "rounds", "kernels", "spans"}
        assert telemetry["phases"]["encode"] > 0
        assert telemetry["kernels"]["grr.encode_batch"]["calls"] > 0
        assert telemetry["spans"]["total"] > 0
        assert telemetry["spans"]["by_name"]["round"] == len(result.rounds)

    def test_telemetry_is_json_serializable(self):
        result = SPEC.run(
            DATA, backend="inline", seed=SEED, telemetry=True,
            **BACKEND_OPTIONS["inline"],
        )
        round_tripped = RunResult.from_json(result.to_json())
        assert round_tripped.telemetry == result.telemetry

    def test_trace_option_writes_chrome_trace(self, tmp_path):
        path = tmp_path / "trace.json"
        SPEC.run(
            DATA, backend="inline", seed=SEED, trace=str(path),
            **BACKEND_OPTIONS["inline"],
        )
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        names = {e["name"] for e in events if e["ph"] == "X"}
        assert "round" in names
        assert "engine.close_round" in names

    def test_capture_is_uninstalled_after_the_run(self):
        SPEC.run(
            DATA, backend="inline", seed=SEED, telemetry=True,
            **BACKEND_OPTIONS["inline"],
        )
        assert current_tracer() is None
        assert current_profiler() is None

    def test_telemetry_still_validates_real_unknown_options(self):
        with pytest.raises(ConfigurationError, match="unknown or inert"):
            SPEC.run(DATA, seed=SEED, telemetry=True, shard=2)


class TestFingerprintSafety:
    """The acceptance gate: telemetry must not move a single RNG draw."""

    def test_inline_fingerprint_unchanged_by_telemetry(self, plain_inline):
        observed = SPEC.run(
            DATA, backend="inline", seed=SEED, telemetry=True,
            **BACKEND_OPTIONS["inline"],
        )
        assert observed.fingerprint() == plain_inline.fingerprint()

    @pytest.mark.parametrize("backend", ["sharded", "gateway", "cluster"])
    def test_every_backend_fingerprint_with_telemetry_enabled(
        self, plain_inline, backend
    ):
        observed = SPEC.run(
            DATA, backend=backend, seed=SEED, telemetry=True,
            **BACKEND_OPTIONS[backend],
        )
        assert observed.telemetry
        assert observed.fingerprint() == plain_inline.fingerprint()


class TestWindowTelemetry:
    def _windowed_spec(self):
        import dataclasses

        return dataclasses.replace(
            SPEC, windows=WindowSpec(length=1000, n_windows=2)
        )

    def test_sequence_telemetry_block_and_fingerprints(self, tmp_path):
        spec = self._windowed_spec()
        data = DataSpec(source="synthetic", n_users=2000, seed=9)
        plain = spec.run(data, backend="inline", seed=SEED)
        assert "telemetry" not in plain.continual

        path = tmp_path / "windows.json"
        observed = spec.run(
            data, backend="inline", seed=SEED, telemetry=True, trace=str(path)
        )
        telemetry = observed.continual["telemetry"]
        assert telemetry["spans"]["by_name"]["window.close"] == len(observed)
        assert observed.fingerprints() == plain.fingerprints()
        assert json.loads(path.read_text())["traceEvents"]
