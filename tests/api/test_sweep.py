"""SweepSpec grids: expansion, JSON round-trips, execution, fingerprints."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    DataSpec,
    ExperimentSpec,
    PrivacySpec,
    SAXSpec,
    SweepResult,
    SweepSpec,
)
from repro.exceptions import ConfigurationError

# --------------------------------------------------------------- strategies

epsilons = st.floats(min_value=0.1, max_value=16.0, allow_nan=False,
                     allow_infinity=False)

data_specs = st.builds(
    DataSpec,
    source=st.sampled_from(["synthetic", "symbols", "trace", "waves"]),
    n_users=st.integers(min_value=1, max_value=10**6),
    seed=st.integers(min_value=0, max_value=2**31),
    n_templates=st.integers(min_value=1, max_value=12),
    template_length=st.integers(min_value=2, max_value=9),
)

base_specs = st.builds(
    ExperimentSpec,
    mechanism=st.sampled_from(["privshape", "baseline", "pem"]),
    privacy=st.builds(PrivacySpec, epsilon=epsilons),
    sax=st.builds(SAXSpec, alphabet_size=st.integers(min_value=2, max_value=8)),
)

sweep_specs = st.builds(
    SweepSpec,
    base=base_specs,
    task=st.sampled_from(["extract", "cluster", "classify"]),
    epsilons=st.lists(epsilons, max_size=4, unique=True).map(tuple),
    mechanisms=st.lists(
        st.sampled_from(["privshape", "baseline", "pem"]), max_size=3,
        unique=True,
    ).map(tuple),
    alphabet_sizes=st.lists(
        st.integers(min_value=2, max_value=8), max_size=3, unique=True
    ).map(tuple),
    segment_lengths=st.lists(
        st.integers(min_value=1, max_value=50), max_size=3, unique=True
    ).map(tuple),
    datasets=st.lists(data_specs, max_size=2).map(tuple),
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(sweep=sweep_specs)
    def test_json_round_trip_is_lossless(self, sweep):
        """from_json(to_json(s)) reproduces the grid exactly."""
        replayed = SweepSpec.from_json(sweep.to_json())
        assert replayed == sweep
        assert replayed.points() == sweep.points()

    @settings(max_examples=40, deadline=None)
    @given(sweep=sweep_specs)
    def test_expansion_size_is_product_of_axes(self, sweep):
        expected = 1
        for values in sweep.axes().values():
            expected *= len(values)
        assert len(sweep.points()) == expected
        assert len(sweep) == expected


class TestExpansion:
    def test_point_order_is_deterministic(self):
        sweep = SweepSpec(epsilons=(1.0, 2.0), alphabet_sizes=(3, 4))
        assert sweep.points() == [
            {"alphabet_size": 3, "epsilon": 1.0},
            {"alphabet_size": 3, "epsilon": 2.0},
            {"alphabet_size": 4, "epsilon": 1.0},
            {"alphabet_size": 4, "epsilon": 2.0},
        ]

    def test_spec_for_applies_every_axis(self):
        sweep = SweepSpec(
            base=ExperimentSpec(mechanism="privshape"),
            epsilons=(2.0,),
            mechanisms=("baseline",),
            alphabet_sizes=(5,),
            segment_lengths=(17,),
        )
        (point,) = sweep.points()
        spec = sweep.spec_for(point)
        assert spec.mechanism == "baseline"
        assert spec.privacy.epsilon == 2.0
        assert spec.sax.alphabet_size == 5
        assert spec.sax.segment_length == 17

    def test_empty_grid_is_one_base_run(self):
        assert SweepSpec().points() == [{}]

    def test_unknown_task_rejected(self):
        with pytest.raises(ConfigurationError, match="task"):
            SweepSpec(task="teleport")

    def test_dataset_axis_survives_dict_form(self):
        sweep = SweepSpec(datasets=(DataSpec(source="trace", n_users=99),))
        rebuilt = SweepSpec.from_dict(sweep.to_dict())
        assert rebuilt.datasets[0].source == "trace"
        assert rebuilt.datasets[0].n_users == 99


DATA = DataSpec(source="synthetic", n_users=1500, seed=4)
BASE = ExperimentSpec(mechanism="privshape", privacy=PrivacySpec(epsilon=6.0))


class TestExecution:
    def test_mini_sweep_runs_every_point(self):
        sweep = SweepSpec(base=BASE, task="extract", epsilons=(2.0, 6.0))
        result = sweep.run(DATA, backend="inline", seed=1)
        assert len(result.runs) == 2
        assert [run.spec.privacy.epsilon for run in result.runs] == [2.0, 6.0]
        assert all(run.estimates for run in result.runs)

    def test_parallel_fanout_preserves_order_and_results(self):
        sweep = SweepSpec(base=BASE, task="extract", epsilons=(2.0, 6.0))
        serial = sweep.run(DATA, backend="inline", seed=1)
        fanned = sweep.run(DATA, backend="inline", seed=1, parallel=2)
        assert fanned.fingerprint() == serial.fingerprint()

    def test_missing_data_rejected_without_dataset_axis(self):
        with pytest.raises(ConfigurationError, match="datasets axis"):
            SweepSpec(base=BASE, epsilons=(1.0,)).run(None)

    def test_dataset_axis_provides_per_point_data(self):
        sweep = SweepSpec(
            base=BASE,
            task="extract",
            datasets=(
                DataSpec(source="synthetic", n_users=1000, seed=1),
                DataSpec(source="synthetic", n_users=1000, seed=2),
            ),
        )
        result = sweep.run(backend="inline", seed=0)
        assert [run.data["seed"] for run in result.runs] == [1, 2]

    def test_result_round_trip_and_table(self):
        sweep = SweepSpec(base=BASE, task="extract", epsilons=(6.0,))
        result = sweep.run(DATA, backend="inline", seed=2)
        replayed = SweepResult.from_json(result.to_json())
        assert replayed.fingerprint() == result.fingerprint()
        headers, rows = replayed.table()
        assert headers[0] == "epsilon"
        assert len(rows) == 1
