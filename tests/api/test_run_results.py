"""RunResult artifacts: normalization, JSON round-trips, fingerprints."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import DataSpec, ExperimentSpec, PrivacySpec, RunResult, SAXSpec
from repro.api.results import (
    ROUND_KEYS,
    RUN_RESULT_FORMAT,
    normalize_round,
    package_version,
)
from repro.exceptions import DataShapeError

# --------------------------------------------------------------- strategies

epsilons = st.floats(min_value=0.1, max_value=16.0, allow_nan=False,
                     allow_infinity=False)
shape_texts = st.text(alphabet="abcdef", min_size=1, max_size=8)

specs = st.builds(
    ExperimentSpec,
    mechanism=st.sampled_from(["privshape", "baseline", "pem"]),
    privacy=st.builds(PrivacySpec, epsilon=epsilons),
    sax=st.builds(
        SAXSpec,
        alphabet_size=st.integers(min_value=2, max_value=8),
        segment_length=st.integers(min_value=1, max_value=50),
    ),
    rng_seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
)

estimates = st.lists(
    st.fixed_dictionaries(
        {
            "shape": shape_texts,
            "estimated_count": st.one_of(
                st.none(),
                st.floats(min_value=0, max_value=1e9, allow_nan=False),
            ),
        },
        optional={"label": st.integers(min_value=0, max_value=9)},
    ),
    max_size=6,
)

rounds = st.lists(
    st.fixed_dictionaries(
        {
            "round": st.integers(min_value=0, max_value=64),
            "kind": st.sampled_from(["length", "subshape", "expand", "refine"]),
            "level": st.integers(min_value=-1, max_value=16),
            "reports": st.integers(min_value=0, max_value=10**7),
            "elapsed_seconds": st.floats(min_value=0, max_value=1e4,
                                         allow_nan=False),
        }
    ),
    max_size=8,
)

metric_dicts = st.dictionaries(
    st.sampled_from(["ari", "accuracy", "elapsed_seconds"]),
    st.floats(min_value=-1, max_value=1e4, allow_nan=False),
    max_size=3,
)

run_results = st.builds(
    RunResult,
    task=st.sampled_from(["extract", "cluster", "classify"]),
    spec=specs,
    backend=st.sampled_from(["inline", "sharded", "gateway", "subprocess"]),
    seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
    estimates=estimates,
    estimated_length=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
    metrics=metric_dicts,
    rounds=rounds,
)


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(result=run_results)
    def test_json_round_trip_is_lossless(self, result):
        """from_json(to_json(r)) reproduces the artifact field for field."""
        replayed = RunResult.from_json(result.to_json())
        assert replayed.to_dict() == result.to_dict()
        assert replayed.fingerprint() == result.fingerprint()

    @settings(max_examples=30, deadline=None)
    @given(result=run_results)
    def test_fingerprint_ignores_backend_and_timing(self, result):
        """Fingerprints must not depend on how or how fast a run executed."""
        replayed = RunResult.from_json(result.to_json())
        replayed.backend = "somewhere-else"
        replayed.backend_info = {"host": "example", "port": 1}
        replayed.timings = {"total_seconds": 1e9}
        replayed.repro_version = "0.0.0"
        assert replayed.fingerprint() == result.fingerprint()

    def test_cli_envelope_parses(self):
        """A `repro run --json` document (extra command key) parses directly."""
        result = RunResult(task="extract", spec=ExperimentSpec())
        payload = {"command": "run", **result.to_dict()}
        assert RunResult.from_dict(payload).to_dict() == result.to_dict()


class TestSchema:
    def test_format_tag_is_stamped(self):
        payload = RunResult(task="extract", spec=ExperimentSpec()).to_dict()
        assert payload["format"] == RUN_RESULT_FORMAT
        assert payload["repro_version"] == package_version()

    def test_wrong_format_rejected(self):
        payload = RunResult(task="extract", spec=ExperimentSpec()).to_dict()
        payload["format"] = "repro.other/v9"
        with pytest.raises(DataShapeError, match="expected a"):
            RunResult.from_dict(payload)

    def test_unknown_task_rejected(self):
        with pytest.raises(DataShapeError, match="task"):
            RunResult(task="frobnicate", spec=ExperimentSpec())

    def test_rounds_are_normalized_on_construction(self):
        """Driver-style 'participants' records come out in canonical keys."""
        result = RunResult(
            task="extract",
            spec=ExperimentSpec(),
            rounds=[{"round": 0, "kind": "length", "level": -1,
                     "participants": 42, "elapsed_seconds": 0.5}],
        )
        assert set(result.rounds[0]) == set(ROUND_KEYS)
        assert result.rounds[0]["reports"] == 42
        assert result.rounds[0]["reports_per_second"] == pytest.approx(84.0)

    def test_normalize_round_defaults(self):
        record = normalize_round({})
        assert set(record) == set(ROUND_KEYS)
        assert record["reports"] == 0
        assert record["reports_per_second"] == 0.0

    def test_json_document_is_plain_data(self):
        """The serialized artifact is valid strict JSON (no NaN, no objects)."""
        result = RunResult(
            task="cluster",
            spec=ExperimentSpec(),
            estimates=[{"shape": "ab", "estimated_count": None}],
            metrics={"ari": 0.5},
        )
        parsed = json.loads(result.to_json())
        assert parsed["estimates"][0]["estimated_count"] is None


class TestAccessors:
    def test_shapes_and_frequencies(self):
        result = RunResult(
            task="extract",
            spec=ExperimentSpec(),
            estimates=[
                {"shape": "abc", "estimated_count": 10.5},
                {"shape": "cba", "estimated_count": None},
            ],
        )
        assert result.shapes == ["abc", "cba"]
        assert result.frequencies[0] == 10.5
        assert result.frequencies[1] != result.frequencies[1]  # NaN

    def test_shapes_by_class_groups_labels(self):
        result = RunResult(
            task="classify",
            spec=ExperimentSpec(),
            estimates=[
                {"shape": "ab", "estimated_count": 3.0, "label": 1},
                {"shape": "ba", "estimated_count": 2.0, "label": 0},
                {"shape": "aa", "estimated_count": 1.0, "label": 1},
            ],
        )
        assert result.shapes_by_class() == {0: ["ba"], 1: ["ab", "aa"]}

    def test_data_echo_round_trips_dataspec(self):
        data = DataSpec(source="trace", n_users=123, seed=7)
        result = RunResult(task="extract", spec=ExperimentSpec(),
                           data=data.describe())
        replayed = RunResult.from_json(result.to_json())
        assert DataSpec.from_dict(replayed.data) == data
