"""Tests for the generic registry and the mechanism registry."""

import pytest

from repro.api import (
    KIND_EXTRACTION,
    KIND_PERTURBATION,
    MechanismEntry,
    Registry,
    available_mechanisms,
    mechanism_registry,
    register_mechanism,
)
from repro.exceptions import ConfigurationError


class TestRegistry:
    def test_add_get_roundtrip(self):
        registry = Registry("widget")
        registry.add("a", 1)
        registry.add("B", 2)
        assert registry.get("a") == 1
        assert registry.get("b") == 2  # case-insensitive
        assert registry.get("B") == 2
        assert registry.names() == ("a", "b")
        assert "A" in registry
        assert "c" not in registry
        assert len(registry) == 2

    def test_unknown_name_lists_available(self):
        registry = Registry("widget")
        registry.add("alpha", object())
        with pytest.raises(ConfigurationError, match="unknown widget 'beta'.*alpha"):
            registry.get("beta")

    def test_duplicate_registration_rejected(self):
        registry = Registry("widget")
        registry.add("a", 1)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.add("a", 2)
        assert registry.get("a") == 1
        registry.add("a", 3, overwrite=True)
        assert registry.get("a") == 3

    def test_remove(self):
        registry = Registry("widget")
        registry.add("a", 1)
        assert registry.remove("a") == 1
        assert "a" not in registry
        with pytest.raises(ConfigurationError):
            registry.remove("a")

    def test_decorator_form(self):
        registry = Registry("hook")

        @registry.register("double")
        def double(x):
            return 2 * x

        assert registry.get("double") is double
        assert registry.get("double")(4) == 8


class TestMechanismRegistry:
    def test_builtins_registered(self):
        assert set(available_mechanisms()) >= {
            "privshape", "baseline", "patternldp", "pem", "pid",
        }

    def test_families(self):
        assert available_mechanisms(KIND_EXTRACTION) == ("privshape", "baseline", "pem")
        assert available_mechanisms(KIND_PERTURBATION) == ("patternldp", "pid")

    def test_entries_are_mechanism_entries(self):
        for name in available_mechanisms():
            entry = mechanism_registry.get(name)
            assert isinstance(entry, MechanismEntry)
            assert entry.name == name
            assert entry.kind in (KIND_EXTRACTION, KIND_PERTURBATION)
            assert callable(entry.factory)

    def test_unknown_mechanism_error_lists_names(self):
        with pytest.raises(ConfigurationError, match="privshape"):
            mechanism_registry.get("magic")

    def test_register_mechanism_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            register_mechanism("broken", "other-kind")

    def test_custom_registration_and_cleanup(self):
        @register_mechanism("test-null", KIND_EXTRACTION, "test double")
        def build(spec):  # pragma: no cover - never built
            raise AssertionError

        try:
            assert "test-null" in mechanism_registry
            assert "test-null" in available_mechanisms(KIND_EXTRACTION)
        finally:
            mechanism_registry.remove("test-null")
        assert "test-null" not in mechanism_registry
