"""Tests for the composable experiment specs and the legacy-config bridge."""

import dataclasses
import json

import pytest

import repro
from repro.api import (
    CollectionSpec,
    ExperimentSpec,
    PrivacySpec,
    SAXSpec,
    as_baseline_config,
    as_privshape_config,
)
from repro.core.config import BaselineConfig, PrivShapeConfig
from repro.exceptions import ConfigurationError
from repro.service.plan import CollectionPlan


class TestComponentSpecs:
    def test_privacy_validation(self):
        assert PrivacySpec(epsilon=2).epsilon == 2.0
        with pytest.raises(Exception):
            PrivacySpec(epsilon=-1.0)

    def test_sax_validation_and_alphabet(self):
        spec = SAXSpec(alphabet_size=4, segment_length=10)
        assert spec.alphabet == ["a", "b", "c", "d"]
        with pytest.raises(ConfigurationError):
            SAXSpec(alphabet_size=1)

    def test_sax_builds_equivalent_transformer(self):
        spec = SAXSpec(alphabet_size=6, segment_length=25, compress=False)
        transformer = spec.build_transformer()
        assert transformer.alphabet_size == 6
        assert transformer.segment_length == 25
        assert transformer.compress is False

    def test_collection_validation(self):
        with pytest.raises(ConfigurationError):
            CollectionSpec(length_low=5, length_high=2)
        with pytest.raises(ConfigurationError):
            CollectionSpec(population_fractions=(0.5, 0.5, 0.5, 0.5))
        with pytest.raises(ConfigurationError):
            CollectionSpec(population_fractions=(0.5, 0.5))
        with pytest.raises(ConfigurationError):
            CollectionSpec(length_population_fraction=1.5)
        with pytest.raises(ConfigurationError):
            CollectionSpec(prune_threshold=-1.0)


class TestExperimentSpecRoundTrip:
    def test_dict_round_trip_defaults(self):
        spec = ExperimentSpec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_dict_round_trip_custom(self):
        spec = ExperimentSpec(
            mechanism="PEM",
            privacy=PrivacySpec(epsilon=2.5),
            sax=SAXSpec(alphabet_size=6, segment_length=25, compress=False),
            collection=CollectionSpec(
                top_k=4,
                metric="sed",
                length_high=9,
                candidate_factor=2,
                population_fractions=(0.1, 0.1, 0.6, 0.2),
                refinement=False,
                oracle="oue",
            ),
            options={"symbols_per_round": 2},
            rng_seed=7,
        )
        assert spec.mechanism == "pem"  # normalized to lower case
        restored = ExperimentSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_json_round_trip_is_valid_json(self):
        spec = ExperimentSpec(mechanism="baseline", rng_seed=3)
        document = spec.to_json()
        payload = json.loads(document)
        assert payload["mechanism"] == "baseline"
        assert ExperimentSpec.from_json(document) == spec

    def test_from_dict_defaults_missing_sections(self):
        spec = ExperimentSpec.from_dict({"mechanism": "privshape"})
        assert spec.privacy == PrivacySpec()
        assert spec.sax == SAXSpec()
        assert spec.collection == CollectionSpec()

    def test_to_dict_is_plain_data(self):
        payload = ExperimentSpec().to_dict()
        assert isinstance(payload["collection"]["population_fractions"], list)
        json.dumps(payload)  # must not raise


class TestResolution:
    def test_resolve_fills_only_none_slots(self):
        spec = ExperimentSpec(collection=CollectionSpec(top_k=5))
        resolved = spec.resolve(top_k=3, length_high=8)
        assert resolved.collection.top_k == 5  # explicit value wins
        assert resolved.collection.length_high == 8

    def test_resolve_is_noop_when_concrete(self):
        spec = ExperimentSpec(collection=CollectionSpec(top_k=3, length_high=8))
        assert spec.resolve(top_k=1, length_high=1, alphabet_size=4) is spec

    def test_resolve_updates_alphabet(self):
        resolved = ExperimentSpec().resolve(top_k=2, length_high=5, alphabet_size=7)
        assert resolved.sax.alphabet_size == 7

    def test_unresolved_spec_refuses_config_conversion(self):
        with pytest.raises(ConfigurationError, match="unresolved"):
            ExperimentSpec().to_privshape_config()
        with pytest.raises(ConfigurationError, match="unresolved"):
            ExperimentSpec().to_baseline_config()


class TestConfigBridge:
    def test_to_privshape_config_matches_legacy(self):
        spec = ExperimentSpec(
            privacy=PrivacySpec(epsilon=3.0),
            sax=SAXSpec(alphabet_size=5),
            collection=CollectionSpec(
                top_k=2, metric="dtw", length_high=7, candidate_factor=4,
                population_fractions=(0.1, 0.1, 0.6, 0.2), postprocess=False,
            ),
            rng_seed=11,
        )
        config = spec.to_privshape_config()
        assert config == PrivShapeConfig(
            epsilon=3.0, top_k=2, alphabet_size=5, metric="dtw",
            length_low=1, length_high=7, rng_seed=11, candidate_factor=4,
            population_fractions=(0.1, 0.1, 0.6, 0.2), postprocess=False,
        )

    def test_to_baseline_config_matches_legacy(self):
        spec = ExperimentSpec(
            collection=CollectionSpec(
                top_k=3, length_high=6, prune_threshold=12.0, max_candidates=64,
            )
        )
        config = spec.to_baseline_config()
        assert config == BaselineConfig(
            epsilon=1.0, top_k=3, alphabet_size=4, metric="dtw",
            length_low=1, length_high=6, prune_threshold=12.0, max_candidates=64,
        )

    def test_from_config_round_trip(self):
        config = PrivShapeConfig(
            epsilon=2.0, top_k=4, alphabet_size=6, metric="sed",
            length_high=9, candidate_factor=2, refinement=False,
        )
        spec = ExperimentSpec.from_config(config)
        assert spec.mechanism == "privshape"
        assert spec.to_privshape_config() == config

        baseline = BaselineConfig(epsilon=2.0, top_k=4, length_high=9, max_candidates=32)
        spec = ExperimentSpec.from_config(baseline)
        assert spec.mechanism == "baseline"
        assert spec.to_baseline_config() == baseline

    def test_as_config_coercions(self):
        config = PrivShapeConfig(epsilon=2.0, length_high=5)
        assert as_privshape_config(config) is config
        spec = ExperimentSpec(collection=CollectionSpec(top_k=3, length_high=5))
        assert isinstance(as_privshape_config(spec), PrivShapeConfig)
        assert isinstance(as_baseline_config(spec), BaselineConfig)
        with pytest.raises(ConfigurationError):
            as_privshape_config(42)

    def test_collection_plan_consumes_spec_directly(self):
        spec = ExperimentSpec(
            privacy=PrivacySpec(epsilon=2.0),
            collection=CollectionSpec(top_k=3, length_high=5, metric="sed"),
        )
        plan = CollectionPlan.freeze(spec, split_key=123)
        reference = CollectionPlan.freeze(spec.to_privshape_config(), split_key=123)
        assert plan == reference


class TestEngineEquivalence:
    def test_privshape_runs_identically_from_spec_and_config(self, symbols_sequences):
        spec = ExperimentSpec(
            privacy=PrivacySpec(epsilon=4.0),
            sax=SAXSpec(alphabet_size=6, segment_length=25),
            collection=CollectionSpec(top_k=3, metric="sed", length_high=8),
        )
        from_spec = repro.PrivShape(spec).extract(symbols_sequences, rng=5)
        with pytest.warns(DeprecationWarning):
            config = repro.PrivShapeConfig(
                epsilon=4.0, top_k=3, alphabet_size=6, metric="sed", length_high=8
            )
        from_config = repro.PrivShape(config).extract(symbols_sequences, rng=5)
        assert from_spec.shapes == from_config.shapes
        assert from_spec.frequencies == from_config.frequencies


class TestDeprecationShims:
    def test_legacy_imports_warn_but_work(self):
        for name in ("PrivShapeConfig", "BaselineConfig", "MechanismConfig"):
            with pytest.warns(DeprecationWarning, match=name):
                cls = getattr(repro, name)
            assert cls is not None

    def test_unknown_attribute_still_raises(self):
        with pytest.raises(AttributeError):
            repro.DoesNotExist

    def test_legacy_names_stay_in_all(self):
        assert "PrivShapeConfig" in repro.__all__
        assert "BaselineConfig" in repro.__all__

    def test_spec_is_frozen(self):
        spec = ExperimentSpec()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.mechanism = "baseline"

    def test_options_are_immutable(self):
        spec = ExperimentSpec(options={"sample_fraction": 0.2})
        with pytest.raises(TypeError):
            spec.options["sample_fraction"] = 0.9
        assert spec.options["sample_fraction"] == 0.2

    def test_spec_is_hashable_and_usable_as_cache_key(self):
        first = ExperimentSpec(options={"a": 1})
        second = ExperimentSpec(options={"a": 1})
        different = ExperimentSpec(options={"a": 2})
        assert first == second
        assert hash(first) == hash(second)
        cache = {first: "result"}
        assert cache[second] == "result"
        assert different not in cache

    def test_hash_handles_json_container_options(self):
        # from_json legally produces list/dict option values; hashing must
        # not blow up on them.
        spec = ExperimentSpec.from_json(
            '{"options": {"epsilons": [1, 2], "nested": {"b": 2, "a": 1}}}'
        )
        twin = ExperimentSpec(options={"nested": {"a": 1, "b": 2}, "epsilons": [1, 2]})
        assert spec == twin
        assert hash(spec) == hash(twin)
