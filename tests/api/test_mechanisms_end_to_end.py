"""PEM / PID end-to-end through the pipelines, the CLI, and custom registration."""

import pytest

from repro.api import (
    KIND_EXTRACTION,
    ExperimentSpec,
    PEMExtractor,
    PrivacySpec,
    mechanism_registry,
    register_mechanism,
)
from repro.api.spec import CollectionSpec
from repro.cli import main
from repro.core.pipeline import run_classification_task, run_clustering_task
from repro.datasets import symbols_like, trace_like


@pytest.fixture(scope="module")
def tiny_symbols():
    return symbols_like(n_instances=420, rng=31)


@pytest.fixture(scope="module")
def tiny_trace():
    return trace_like(n_instances=240, rng=32)


class TestPEMExtractor:
    def test_extract_structure(self, tiny_symbols):
        from repro.sax.compressive import CompressiveSAX

        sequences = CompressiveSAX(
            alphabet_size=6, segment_length=25
        ).transform_dataset(tiny_symbols.series)
        extractor = PEMExtractor(
            epsilon=6.0, top_k=3, alphabet=tuple("abcdef"), length_high=8
        )
        result = extractor.extract(sequences, rng=0)
        assert 1 <= len(result.shapes) <= 3
        assert result.frequencies == sorted(result.frequencies, reverse=True)
        assert result.estimated_length >= 1
        assert result.accountant.is_valid()

    def test_candidate_budget(self):
        extractor = PEMExtractor(top_k=3, candidate_factor=2)
        assert extractor.candidate_budget == 6

    def test_small_population_raises_instead_of_reusing_users(self):
        # With too few users to fill the Pa length-estimation group, the
        # extractor must refuse (like the baseline mechanism) rather than
        # silently let users report twice at full epsilon.
        from repro.exceptions import EstimationError

        extractor = PEMExtractor(epsilon=4.0, top_k=2, length_high=4)
        with pytest.raises(EstimationError):
            extractor.extract([("a", "b", "c")] * 10, rng=0)

    def test_accountant_records_resolved_oracle(self):
        # oracle="auto" must be resolved per round before it reaches the
        # privacy audit — the accountant names what actually ran.
        sequences = [("a", "b", "c", "d"), ("b", "a", "c", "a"), ("a", "c", "b", "d")] * 20
        extractor = PEMExtractor(
            epsilon=4.0, top_k=2, length_high=5, oracle="auto",
            length_population_fraction=0.1,
        )
        result = extractor.extract(sequences, rng=1)
        mechanisms = [
            spend.mechanism for spend in result.accountant.spends
            if "prefix-frequency oracle" in spend.mechanism
        ]
        assert mechanisms, result.accountant.spends
        assert all("AUTO" not in mechanism for mechanism in mechanisms)
        assert all(
            mechanism.split()[0] in ("GRR", "OUE", "OLH", "SUE")
            for mechanism in mechanisms
        )

    def test_from_spec_reads_options(self):
        spec = ExperimentSpec(
            mechanism="pem",
            collection=CollectionSpec(top_k=2, length_high=6, oracle="oue"),
            options={"symbols_per_round": 2},
        )
        extractor = PEMExtractor.from_spec(spec)
        assert extractor.symbols_per_round == 2
        assert extractor.oracle == "oue"
        assert extractor.top_k == 2


class TestPemPidPipelines:
    def test_pem_clustering_end_to_end(self, tiny_symbols):
        result = run_clustering_task(
            tiny_symbols, mechanism="pem", epsilon=6.0, evaluation_size=80, rng=1
        )
        assert -1.0 <= result.ari <= 1.0
        assert result.shapes
        assert result.extraction is not None
        assert result.extraction.accountant.is_valid()

    def test_pid_clustering_end_to_end(self, tiny_symbols):
        result = run_clustering_task(
            tiny_symbols, mechanism="pid", epsilon=6.0, evaluation_size=60, rng=2
        )
        assert -1.0 <= result.ari <= 1.0
        assert result.extraction is None  # perturbation mechanisms have none

    def test_pem_classification_end_to_end(self, tiny_trace):
        result = run_classification_task(
            tiny_trace, mechanism="pem", epsilon=6.0, evaluation_size=60, rng=3
        )
        assert 0.0 <= result.accuracy <= 1.0
        assert set(result.shapes_by_class) <= set(range(tiny_trace.n_classes))

    def test_pid_classification_end_to_end(self, tiny_trace):
        result = run_classification_task(
            tiny_trace,
            mechanism="pid",
            epsilon=6.0,
            evaluation_size=50,
            patternldp_train_size=120,
            forest_size=4,
            rng=4,
        )
        assert 0.0 <= result.accuracy <= 1.0

    def test_spec_invocation_replays_identically(self, tiny_symbols):
        spec = ExperimentSpec(mechanism="pem", privacy=PrivacySpec(epsilon=6.0))
        replayed = ExperimentSpec.from_json(spec.to_json())
        first = run_clustering_task(tiny_symbols, spec, evaluation_size=60, rng=5)
        second = run_clustering_task(tiny_symbols, replayed, evaluation_size=60, rng=5)
        assert first.shapes == second.shapes
        assert first.ari == second.ari

    def test_spec_and_keyword_paths_agree(self, tiny_symbols):
        from repro.api import SAXSpec

        by_keywords = run_clustering_task(
            tiny_symbols, mechanism="privshape", epsilon=6.0, evaluation_size=60, rng=6
        )
        # A spec matching the clustering task's keyword defaults (t=6, w=25)
        # must reproduce the keyword invocation exactly.
        by_spec = run_clustering_task(
            tiny_symbols,
            ExperimentSpec(
                mechanism="privshape",
                privacy=PrivacySpec(epsilon=6.0),
                sax=SAXSpec(alphabet_size=6, segment_length=25),
            ),
            evaluation_size=60,
            rng=6,
        )
        assert by_keywords.shapes == by_spec.shapes
        assert by_keywords.ari == by_spec.ari

    def test_spec_rng_seed_used_when_no_rng_given(self, tiny_symbols):
        spec = ExperimentSpec(
            mechanism="privshape", privacy=PrivacySpec(epsilon=6.0), rng_seed=9
        )
        first = run_clustering_task(tiny_symbols, spec, evaluation_size=60)
        second = run_clustering_task(tiny_symbols, spec, evaluation_size=60)
        assert first.shapes == second.shapes

    def test_positional_spec_plus_spec_kwarg_rejected(self, tiny_symbols):
        from repro.exceptions import ConfigurationError

        spec = ExperimentSpec()
        with pytest.raises(ConfigurationError, match="not both"):
            run_clustering_task(tiny_symbols, spec, spec=spec)

    def test_conflicting_mechanism_string_and_spec_rejected(self, tiny_symbols):
        from repro.exceptions import ConfigurationError

        spec = ExperimentSpec(mechanism="privshape")
        with pytest.raises(ConfigurationError, match="conflicts"):
            run_clustering_task(tiny_symbols, mechanism="pem", spec=spec)

    def test_matching_mechanism_string_and_spec_allowed(self, tiny_symbols):
        spec = ExperimentSpec(mechanism="pem", privacy=PrivacySpec(epsilon=6.0))
        result = run_clustering_task(
            tiny_symbols, mechanism="pem", spec=spec, evaluation_size=60, rng=8
        )
        assert result.mechanism == "pem"


class TestCliIntegration:
    def test_cluster_accepts_pem(self, capsys):
        exit_code = main(
            ["cluster", "--dataset", "symbols", "--users", "240",
             "--mechanism", "pem", "--epsilon", "6", "--evaluation-size", "60",
             "--seed", "1"]
        )
        assert exit_code == 0
        assert "mechanism: pem" in capsys.readouterr().out

    def test_classify_accepts_pid(self, capsys):
        exit_code = main(
            ["classify", "--dataset", "trace", "--users", "240",
             "--mechanism", "pid", "--epsilon", "6", "--evaluation-size", "50",
             "--seed", "2"]
        )
        assert exit_code == 0
        assert "mechanism: pid" in capsys.readouterr().out

    def test_extract_accepts_pem(self, capsys):
        exit_code = main(
            ["extract", "--dataset", "trace", "--users", "240",
             "--mechanism", "pem", "--epsilon", "6", "--seed", "3"]
        )
        assert exit_code == 0
        assert "top shapes:" in capsys.readouterr().out

    def test_extract_rejects_perturbation_mechanisms(self):
        with pytest.raises(SystemExit, match="perturbs raw series"):
            main(["extract", "--dataset", "trace", "--users", "240",
                  "--mechanism", "patternldp"])

    def test_spec_file_round_trip(self, tmp_path, capsys):
        spec = ExperimentSpec(mechanism="pem", privacy=PrivacySpec(epsilon=6.0))
        path = tmp_path / "experiment.json"
        path.write_text(spec.to_json())
        exit_code = main(
            ["cluster", "--dataset", "symbols", "--users", "240",
             "--spec", str(path), "--evaluation-size", "60", "--seed", "4", "--json"]
        )
        assert exit_code == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        assert payload["mechanism"] == "pem"


class TestCustomMechanism:
    def test_registered_mechanism_reaches_pipeline(self, tiny_symbols):
        @register_mechanism("test-pem-wide", KIND_EXTRACTION, "two symbols per round")
        def build(spec):
            wide = ExperimentSpec.from_dict(
                {**spec.to_dict(), "options": {"symbols_per_round": 2}}
            )
            return PEMExtractor.from_spec(wide)

        try:
            result = run_clustering_task(
                tiny_symbols, mechanism="test-pem-wide", epsilon=6.0,
                evaluation_size=60, rng=7,
            )
            assert -1.0 <= result.ari <= 1.0
        finally:
            mechanism_registry.remove("test-pem-wide")
