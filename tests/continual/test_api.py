"""The experiment-API surface of continual collection.

``ExperimentSpec.windows`` turns one spec into a windowed run; ``spec.run``
routes it through :func:`repro.run_windows` and returns a
:class:`~repro.api.continual.RunSequence` whose fingerprint sequence is
byte-identical across backends under one master seed.
"""

import dataclasses
import json

import pytest

from repro.api import ExperimentSpec, PrivacySpec, RunSequence, run_windows
from repro.api.continual import RUN_SEQUENCE_FORMAT
from repro.api.spec import CollectionSpec, SAXSpec
from repro.continual.windows import WindowSpec
from repro.exceptions import ConfigurationError
from repro.service import DriftingShapeStream

WINDOWS = WindowSpec(length=600, refresh=True, drift_threshold=0.3)
SEED = 11


def _spec(**overrides) -> ExperimentSpec:
    defaults = dict(
        mechanism="privshape",
        privacy=PrivacySpec(epsilon=6.0),
        sax=SAXSpec(alphabet_size=4),
        collection=CollectionSpec(top_k=2, metric="sed", length_high=5),
        windows=WINDOWS,
    )
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


@pytest.fixture(scope="module")
def population():
    return DriftingShapeStream(
        n_users=1800,
        alphabet=("a", "b", "c", "d"),
        templates=(
            ("a", "b", "c", "d"),
            ("d", "c", "b", "a"),
            ("b", "c", "a", "b"),
        ),
        weights=(0.7, 0.2, 0.1),
        seed=3,
        breakpoints=(1200,),
        mixtures=((0.7, 0.2, 0.1), (0.1, 0.2, 0.7)),
    )


@pytest.fixture(scope="module")
def inline_sequence(population):
    return _spec().run(population, seed=SEED, batch_size=512)


class TestSpecWindows:
    def test_windows_field_round_trips_through_dict(self):
        spec = _spec()
        payload = spec.to_dict()
        assert payload["windows"]["length"] == 600
        restored = ExperimentSpec.from_dict(payload)
        assert restored.windows == WINDOWS
        assert restored == spec

    def test_windows_mapping_is_coerced_to_windowspec(self):
        spec = _spec(windows={"length": 600, "refresh": True,
                              "drift_threshold": 0.3})
        assert spec.windows == WINDOWS

    def test_one_shot_specs_keep_their_historical_byte_form(self):
        payload = _spec(windows=None).to_dict()
        assert "windows" not in payload

    def test_json_round_trip(self):
        spec = _spec()
        assert ExperimentSpec.from_json(spec.to_json()) == spec


class TestRunWindows:
    def test_inline_run_returns_a_sequence(self, inline_sequence):
        assert isinstance(inline_sequence, RunSequence)
        # 3 windows plus window 2's superseded drift probe.
        assert len(inline_sequence) == 4
        assert len(inline_sequence.final_results) == 3
        assert inline_sequence.continual["backend"] == "inline"
        assert inline_sequence.continual["n_windows"] == 3
        assert inline_sequence.continual["accounting"]["within_budget"] is True

    def test_results_carry_window_coordinates(self, inline_sequence):
        first = inline_sequence[0]
        assert first.data["window"] == 0
        assert first.data["mode"] == "full"
        assert first.data["start"] == 0 and first.data["stop"] == 600
        assert first.details["master_seed"] == SEED
        assert first.estimates

    def test_gateway_fingerprints_match_inline(self, population, inline_sequence):
        gateway = _spec().run(
            population, seed=SEED, backend="gateway", batch_size=257, shards=2
        )
        assert gateway.fingerprints() == inline_sequence.fingerprints()
        assert (
            gateway.continual["accounting"]
            == inline_sequence.continual["accounting"]
        )
        assert gateway.continual["base_seed"] == inline_sequence.continual["base_seed"]

    def test_sequence_json_round_trip(self, inline_sequence):
        document = json.dumps(inline_sequence.to_dict())
        restored = RunSequence.from_dict(json.loads(document))
        assert restored.fingerprints() == inline_sequence.fingerprints()
        assert restored.to_dict() == inline_sequence.to_dict()

    def test_from_dict_rejects_foreign_documents(self):
        with pytest.raises(ConfigurationError, match=RUN_SEQUENCE_FORMAT):
            RunSequence.from_dict({"format": "repro.run_result/v1"})


class TestRouting:
    def test_spec_run_dispatches_windowed_specs(self, population):
        # Identical call shape to a one-shot run; the windows field decides.
        sequence = _spec().run(population, seed=SEED, batch_size=512)
        assert isinstance(sequence, RunSequence)

    def test_windowless_spec_rejected_by_run_windows(self, population):
        with pytest.raises(ConfigurationError, match="windowed spec"):
            run_windows(_spec(windows=None), population, seed=SEED)

    def test_non_extract_task_rejected(self, population):
        with pytest.raises(ConfigurationError, match="extract"):
            _spec().run(population, task="clustering", seed=SEED)

    def test_unsupported_backend_rejected(self, population):
        with pytest.raises(ConfigurationError, match="window controller"):
            run_windows(_spec(), population, backend="subprocess", seed=SEED)

    def test_unknown_option_rejected(self, population):
        with pytest.raises(ConfigurationError, match="checkpoint_every"):
            run_windows(
                _spec(), population, seed=SEED, checkpoint_every=4
            )

    def test_non_privshape_mechanism_rejected(self, population):
        spec = dataclasses.replace(_spec(), mechanism="baseline")
        with pytest.raises(ConfigurationError, match="cannot run mechanism"):
            run_windows(spec, population, seed=SEED)
