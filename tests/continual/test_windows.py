"""Window geometry: specs, frozen plans, tickets, views, and seeds."""

import numpy as np
import pytest

from repro.continual.windows import (
    RENEW_GLOBAL,
    RENEW_PER_WINDOW,
    WindowPlan,
    WindowSpec,
    WindowTicket,
    WindowView,
    window_seed,
)
from repro.exceptions import ConfigurationError
from repro.service import SyntheticShapeStream


class TestWindowSeed:
    def test_deterministic(self):
        assert window_seed(7, 3, 1) == window_seed(7, 3, 1)

    def test_distinct_across_windows_and_attempts(self):
        seeds = {
            window_seed(7, index, attempt)
            for index in range(16)
            for attempt in range(4)
        }
        assert len(seeds) == 64

    def test_distinct_across_base_seeds(self):
        assert window_seed(1, 0, 0) != window_seed(2, 0, 0)

    def test_fits_uint64(self):
        for index in range(8):
            assert 0 <= window_seed(12345, index) < 2**64


class TestWindowSpec:
    def test_defaults_are_tumbling(self):
        spec = WindowSpec(length=100)
        assert spec.effective_stride == 100
        assert spec.budget_renewal == RENEW_PER_WINDOW

    def test_explicit_stride(self):
        assert WindowSpec(length=100, stride=50).effective_stride == 50

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(length=0),
            dict(length=10, stride=0),
            dict(length=10, n_windows=0),
            dict(length=10, budget_renewal="monthly"),
            dict(length=10, decay=0.0),
            dict(length=10, decay=1.5),
            dict(length=10, refresh=True, carry_over=False),
            dict(length=10, refresh_fraction=0.0),
            dict(length=10, refresh_fraction=1.0),
            dict(length=10, drift_threshold=-0.1),
            dict(length=10, churn_threshold=1.5),
            dict(length=10, drift_top_k=0),
            dict(length=10, hysteresis=0),
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            WindowSpec(**kwargs)

    def test_dict_round_trip(self):
        spec = WindowSpec(
            length=500,
            stride=250,
            n_windows=4,
            budget_renewal=RENEW_GLOBAL,
            carry_over=True,
            decay=0.75,
            refresh=True,
            refresh_fraction=0.4,
            drift_threshold=0.3,
            churn_threshold=0.5,
            drift_top_k=2,
            hysteresis=2,
        )
        assert WindowSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_defaults(self):
        assert WindowSpec.from_dict({"length": 10}) == WindowSpec(length=10)


class TestWindowPlan:
    def test_tumbling_bounds(self):
        plan = WindowPlan.freeze(WindowSpec(length=100), n_users=350, epsilon=4.0)
        assert plan.bounds == ((0, 100), (100, 200), (200, 300), (300, 350))
        assert plan.n_windows == 4
        assert plan.window_epsilon == 4.0

    def test_sliding_bounds_overlap(self):
        plan = WindowPlan.freeze(
            WindowSpec(length=100, stride=50), n_users=200, epsilon=4.0
        )
        assert plan.bounds == ((0, 100), (50, 150), (100, 200), (150, 200))

    def test_n_windows_caps_the_schedule(self):
        plan = WindowPlan.freeze(
            WindowSpec(length=100, n_windows=2), n_users=1000, epsilon=4.0
        )
        assert plan.bounds == ((0, 100), (100, 200))

    def test_too_few_users_for_requested_windows(self):
        with pytest.raises(ConfigurationError, match="cover only"):
            WindowPlan.freeze(
                WindowSpec(length=100, n_windows=5), n_users=150, epsilon=4.0
            )

    def test_global_renewal_divides_epsilon(self):
        plan = WindowPlan.freeze(
            WindowSpec(length=100, budget_renewal=RENEW_GLOBAL),
            n_users=400,
            epsilon=4.0,
        )
        assert plan.n_windows == 4
        assert plan.window_epsilon == 1.0

    def test_nonpositive_users_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowPlan.freeze(WindowSpec(length=10), n_users=0, epsilon=1.0)

    def test_dict_round_trip(self):
        plan = WindowPlan.freeze(
            WindowSpec(length=100, stride=60), n_users=500, epsilon=2.0
        )
        assert WindowPlan.from_dict(plan.to_dict()) == plan


class TestWindowTicket:
    def test_n_users(self):
        ticket = WindowTicket(
            index=1, attempt=0, mode="full", start=100, stop=250, seed=9, epsilon=2.0
        )
        assert ticket.n_users == 150

    def test_dict_round_trip(self):
        ticket = WindowTicket(
            index=2, attempt=1, mode="refresh", start=200, stop=300,
            seed=window_seed(5, 2, 1), epsilon=1.5,
        )
        assert WindowTicket.from_dict(ticket.to_dict()) == ticket


class TestWindowView:
    @pytest.fixture()
    def stream(self):
        return SyntheticShapeStream(
            n_users=1000,
            alphabet=("a", "b"),
            templates=(("a", "b"), ("b", "a")),
            seed=3,
        )

    def test_rebases_user_ids_to_local(self, stream):
        view = WindowView(stream, 400, 700)
        assert view.n_users == 300
        seen = []
        for user_ids, _ in view.iter_batches(128):
            seen.append(user_ids)
        flat = np.concatenate(seen)
        assert flat[0] == 0 and flat[-1] == 299
        assert np.array_equal(flat, np.arange(300))

    def test_view_batches_match_absolute_slice(self, stream):
        view = WindowView(stream, 400, 700)
        local = [batch for _, batch in view.iter_batches(97)]
        absolute = [batch for _, batch in stream.iter_range(400, 700, 97)]
        for a, b in zip(local, absolute):
            assert np.array_equal(a.codes, b.codes)
            assert np.array_equal(a.lengths, b.lengths)
        assert len(local) == len(absolute)

    def test_iter_range_clamps_to_window(self, stream):
        view = WindowView(stream, 0, 100)
        chunks = list(view.iter_range(50, 500, 64))
        total = sum(len(user_ids) for user_ids, _ in chunks)
        assert total == 50  # local [50, 100)

    @pytest.mark.parametrize("start,stop", [(-1, 10), (10, 10), (900, 1100)])
    def test_out_of_bounds_rejected(self, stream, start, stop):
        with pytest.raises(ConfigurationError):
            WindowView(stream, start, stop)
