"""Drift detection: L1 mixture distance, top-k churn, and hysteresis."""

import pytest

from repro.continual.drift import (
    DriftDetector,
    detector_for,
    l1_drift,
    topk_churn,
)
from repro.continual.windows import WindowSpec

A, B, C = ("a",), ("b",), ("c",)


class TestL1Drift:
    def test_identical_mixtures_score_zero(self):
        mixture = {A: 3.0, B: 1.0}
        assert l1_drift(mixture, mixture) == 0.0

    def test_disjoint_supports_score_one(self):
        assert l1_drift({A: 1.0}, {B: 1.0}) == 1.0

    def test_scale_invariant(self):
        assert l1_drift({A: 1.0, B: 3.0}, {A: 100.0, B: 300.0}) == pytest.approx(0.0)

    def test_half_mass_moved_scores_half(self):
        assert l1_drift({A: 1.0, B: 1.0}, {A: 1.0, C: 1.0}) == pytest.approx(0.5)

    def test_negative_estimates_clip_to_zero(self):
        assert l1_drift({A: 1.0, B: -5.0}, {A: 1.0}) == pytest.approx(0.0)

    def test_empty_cases(self):
        assert l1_drift({}, {}) == 0.0
        assert l1_drift({}, {A: 1.0}) == 1.0
        assert l1_drift({A: 1.0}, {}) == 1.0


class TestTopkChurn:
    def test_same_leaders_score_zero(self):
        # Counts change, ranking does not.
        assert topk_churn({A: 5.0, B: 3.0}, {A: 9.0, B: 4.0}, k=2) == 0.0

    def test_full_turnover_scores_one(self):
        assert topk_churn({A: 5.0}, {B: 5.0}, k=1) == 1.0

    def test_partial_turnover(self):
        baseline = {A: 5.0, B: 3.0, C: 1.0}
        current = {A: 5.0, C: 4.0, B: 0.5}
        assert topk_churn(baseline, current, k=2) == pytest.approx(0.5)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            topk_churn({A: 1.0}, {A: 1.0}, k=0)

    def test_empty_cases(self):
        assert topk_churn({}, {}, k=2) == 0.0
        assert topk_churn({A: 1.0}, {}, k=2) == 1.0


class TestDriftDetector:
    def test_update_requires_baseline(self):
        with pytest.raises(ValueError, match="set_baseline"):
            DriftDetector().update({A: 1.0})

    def test_calm_window_does_not_fire(self):
        detector = DriftDetector(l1_threshold=0.25)
        detector.set_baseline({A: 3.0, B: 1.0})
        decision = detector.update({A: 3.1, B: 0.9})
        assert not decision.drifted
        assert not decision.fired

    def test_shifted_mixture_fires_immediately_at_hysteresis_one(self):
        detector = DriftDetector(l1_threshold=0.25, hysteresis=1)
        detector.set_baseline({A: 3.0, B: 1.0})
        decision = detector.update({A: 0.5, B: 3.5})
        assert decision.drifted
        assert decision.fired

    def test_hysteresis_requires_consecutive_drifted_windows(self):
        detector = DriftDetector(l1_threshold=0.25, hysteresis=2)
        detector.set_baseline({A: 3.0, B: 1.0})
        shifted = {A: 0.5, B: 3.5}
        calm = {A: 3.0, B: 1.0}
        assert not detector.update(shifted).fired  # streak 1
        assert not detector.update(calm).fired  # streak resets
        assert not detector.update(shifted).fired  # streak 1 again
        second = detector.update(shifted)  # streak 2 -> fire
        assert second.drifted
        assert second.fired

    def test_streak_resets_after_firing(self):
        detector = DriftDetector(l1_threshold=0.25, hysteresis=2)
        detector.set_baseline({A: 3.0, B: 1.0})
        shifted = {A: 0.5, B: 3.5}
        detector.update(shifted)
        assert detector.update(shifted).fired
        # The very next drifted window starts a fresh streak.
        assert not detector.update(shifted).fired

    def test_new_baseline_resets_streak(self):
        detector = DriftDetector(l1_threshold=0.25, hysteresis=2)
        detector.set_baseline({A: 3.0, B: 1.0})
        detector.update({A: 0.5, B: 3.5})
        detector.set_baseline({A: 0.5, B: 3.5})
        assert not detector.update({A: 3.0, B: 1.0}).fired

    def test_churn_signal_triggers_without_l1(self):
        # Ranks flip while total variation stays small: only churn sees it.
        detector = DriftDetector(
            l1_threshold=0.9, churn_threshold=0.4, top_k=1, hysteresis=1
        )
        detector.set_baseline({A: 1.02, B: 0.98})
        decision = detector.update({A: 0.98, B: 1.02})
        assert decision.l1 < 0.9
        assert decision.churn == 1.0
        assert decision.fired

    def test_state_round_trip_preserves_streak_and_baseline(self):
        detector = DriftDetector(
            l1_threshold=0.3, churn_threshold=0.5, top_k=2, hysteresis=3
        )
        detector.set_baseline({A: 3.0, B: 1.0})
        detector.update({A: 0.5, B: 3.5})  # streak 1 of 3
        clone = DriftDetector.from_state(detector.to_state())
        assert clone.baseline == detector.baseline
        # Two more drifted windows fire on the clone exactly as they would
        # have on the original: the streak survived the round trip.
        assert not clone.update({A: 0.5, B: 3.5}).fired
        assert clone.update({A: 0.5, B: 3.5}).fired

    def test_decision_to_dict(self):
        detector = DriftDetector(l1_threshold=0.25)
        detector.set_baseline({A: 1.0})
        data = detector.update({A: 1.0}).to_dict()
        assert set(data) == {"l1", "churn", "drifted", "fired"}


def test_detector_for_maps_spec_fields():
    spec = WindowSpec(
        length=100,
        drift_threshold=0.4,
        churn_threshold=0.6,
        drift_top_k=5,
        hysteresis=2,
    )
    detector = detector_for(spec)
    assert detector.l1_threshold == 0.4
    assert detector.churn_threshold == 0.6
    assert detector.top_k == 5
    assert detector.hysteresis == 2
