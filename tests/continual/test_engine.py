"""The continual engine: standalone equivalence, budget renewal, drift policy.

These are the subsystem's core guarantees: a window with carry-over disabled
is byte-identical to a standalone run over its users, every window's ledger
renews under ``per_window`` budgeting, and a scripted mixture shift triggers
a full re-extraction exactly at the breakpoint window.
"""

import pytest

from repro.continual import ContinualEngine, ContinualResult, WindowController
from repro.continual.windows import (
    RENEW_GLOBAL,
    WindowSpec,
    WindowView,
    window_seed,
)
from repro.core.config import PrivShapeConfig
from repro.service import DriftingShapeStream, ProtocolDriver, PrivShapeEngine

ALPHABET = ("a", "b", "c", "d")
TEMPLATES = (
    ("a", "b", "c", "d"),
    ("d", "c", "b", "a"),
    ("b", "c", "a", "b"),
)
WEIGHTS = (0.7, 0.2, 0.1)
SHIFTED = (0.1, 0.2, 0.7)
N_USERS = 3600
BREAKPOINT = 2400
SEED = 11


def _config(epsilon: float = 6.0) -> PrivShapeConfig:
    return PrivShapeConfig(
        epsilon=epsilon, top_k=2, alphabet_size=4, metric="sed",
        length_low=1, length_high=5,
    )


def _population(n_users: int = N_USERS) -> DriftingShapeStream:
    return DriftingShapeStream(
        n_users=n_users,
        alphabet=ALPHABET,
        templates=TEMPLATES,
        weights=WEIGHTS,
        seed=3,
        breakpoints=(BREAKPOINT,),
        mixtures=(WEIGHTS, SHIFTED),
    )


def _run(windows: WindowSpec, *, batch_size: int = 1024, seed: int = SEED):
    return ContinualEngine(
        _config(), windows, _population(), batch_size=batch_size, seed=seed
    ).run()


class TestStandaloneEquivalence:
    def test_carry_over_off_windows_match_standalone_runs(self):
        """Each window without carry-over is byte-identical to a one-shot
        protocol run over the same users with the window's derived seed."""
        outcome = _run(WindowSpec(length=1200, carry_over=False))
        population = _population()
        assert len(outcome.windows) == 3
        for index, payload in enumerate(outcome.windows):
            engine = PrivShapeEngine(
                _config(), rng=window_seed(outcome.base_seed, index, 0)
            )
            view = WindowView(population, payload["start"], payload["stop"])
            ProtocolDriver(_config(), view, batch_size=1024).run(engine=engine)
            result = engine.finalize()
            assert payload["shape_tuples"] == [list(s) for s in result.shapes]
            assert payload["frequencies"] == [float(f) for f in result.frequencies]
            assert payload["estimated_length"] == result.estimated_length

    def test_batch_size_is_invisible(self):
        windows = WindowSpec(length=1200)
        small = _run(windows, batch_size=333)
        large = _run(windows, batch_size=4096)
        assert small.windows == large.windows
        assert small.accounting == large.accounting

    def test_same_seed_reproduces_exactly(self):
        windows = WindowSpec(length=1200, refresh=True, drift_threshold=0.3)
        first, second = _run(windows), _run(windows)
        # Timings carry wall-clock and are excluded by design.
        assert first.windows == second.windows
        assert first.accounting == second.accounting
        assert first.base_seed == second.base_seed

    def test_different_seeds_differ(self):
        windows = WindowSpec(length=1200)
        assert (
            _run(windows, seed=1).windows[0]["frequencies"]
            != _run(windows, seed=2).windows[0]["frequencies"]
        )


class TestBudgetRenewal:
    def test_per_window_renewal_ledger(self):
        outcome = _run(WindowSpec(length=1200))
        accounting = outcome.accounting
        assert accounting["budget_renewal"] == "per_window"
        # Every window spends the full epsilon and stays within it.
        assert accounting["window_epsilons"] == {"0": 6.0, "1": 6.0, "2": 6.0}
        assert accounting["within_budget"] is True
        # Tumbling windows: each user appears exactly once.
        assert accounting["user_horizon"] == 1
        assert accounting["user_level_epsilon_horizon"] == pytest.approx(6.0)
        # Worst case (a user in every window) sums the renewals.
        assert accounting["user_level_epsilon"] == pytest.approx(18.0)

    def test_global_renewal_divides_epsilon(self):
        outcome = _run(WindowSpec(length=1200, budget_renewal=RENEW_GLOBAL))
        accounting = outcome.accounting
        assert accounting["window_epsilons"] == {"0": 2.0, "1": 2.0, "2": 2.0}
        # Even a user in every window stays within the target.
        assert accounting["user_level_epsilon"] == pytest.approx(6.0)
        assert accounting["within_budget"] is True

    def test_per_window_payload_accounting_is_self_contained(self):
        outcome = _run(WindowSpec(length=1200))
        for payload in outcome.windows:
            accounting = payload["accounting"]
            assert accounting["within_budget"] is True
            assert accounting["user_level_epsilon"] <= 6.0 + 1e-9
            assert max(accounting["per_population"].values()) <= 6.0 + 1e-9

    def test_refresh_probe_plus_rerun_fit_one_window_budget(self):
        outcome = _run(
            WindowSpec(
                length=1200, refresh=True, refresh_fraction=0.5,
                drift_threshold=0.3,
            )
        )
        accounting = outcome.accounting
        assert accounting["within_budget"] is True
        for epsilon in accounting["window_epsilons"].values():
            assert epsilon <= 6.0 + 1e-9


class TestDriftPolicy:
    def test_drift_fires_exactly_at_the_breakpoint_window(self):
        """Windows 0-1 draw from the base mixture, window 2 from the shifted
        one; with refresh probing, exactly window 2 re-extracts."""
        outcome = _run(
            WindowSpec(length=1200, refresh=True, drift_threshold=0.3)
        )
        kinds = [
            (p["window"], p["mode"], p["attempt"], p["final"])
            for p in outcome.windows
        ]
        assert kinds == [
            (0, "full", 0, True),  # first window always runs full
            (1, "refresh", 0, True),  # same mixture: probe suffices
            (2, "refresh", 0, False),  # drift fired: probe superseded
            (2, "full", 1, True),  # budget-split full re-extraction
        ]
        fired = [p["window"] for p in outcome.windows if (p["drift"] or {}).get("fired")]
        assert fired == [2]
        assert len(outcome.final_windows()) == 3

    def test_final_windows_reflect_the_shift(self):
        outcome = _run(
            WindowSpec(length=1200, refresh=True, drift_threshold=0.3)
        )
        finals = outcome.final_windows()
        # Dominant shape before and after the breakpoint.
        assert finals[0]["shapes"][0] == "abcd"
        assert finals[2]["shapes"][0] == "bcab"

    def test_no_refresh_means_every_window_runs_full(self):
        outcome = _run(WindowSpec(length=1200, refresh=False))
        assert [p["mode"] for p in outcome.windows] == ["full"] * 3
        assert all(p["drift"] is None for p in outcome.windows)


class TestControllerSnapshot:
    def test_mid_run_state_round_trip_finishes_identically(self):
        windows = WindowSpec(length=1200, refresh=True, drift_threshold=0.3)
        population = _population()

        def finish(controller):
            while (ticket := controller.next_ticket()) is not None:
                engine = controller.build_engine(ticket)
                view = WindowView(population, ticket.start, ticket.stop)
                ProtocolDriver(_config(), view, batch_size=1024).run(engine=engine)
                controller.close_window(ticket, engine)
            return controller

        # Reference: run straight through.
        reference = finish(
            WindowController(_config(), windows, N_USERS, base_seed=SEED)
        )

        # Snapshot after the first window closed, restore, and finish.
        controller = WindowController(_config(), windows, N_USERS, base_seed=SEED)
        ticket = controller.next_ticket()
        engine = controller.build_engine(ticket)
        view = WindowView(population, ticket.start, ticket.stop)
        ProtocolDriver(_config(), view, batch_size=1024).run(engine=engine)
        controller.close_window(ticket, engine)
        restored = finish(WindowController.from_state(controller.to_state()))

        assert restored.results == reference.results
        assert restored.master_accounting() == reference.master_accounting()

    def test_state_preserves_base_seed_and_schedule(self):
        controller = WindowController(
            _config(), WindowSpec(length=1200), N_USERS, base_seed=SEED
        )
        clone = WindowController.from_state(controller.to_state())
        assert clone.base_seed == controller.base_seed
        assert clone.plan == controller.plan
        assert clone.next_ticket() == controller.next_ticket()


class TestContinualResult:
    def test_dict_round_trip(self):
        outcome = _run(WindowSpec(length=1200))
        clone = ContinualResult.from_dict(outcome.to_dict())
        assert clone.to_dict() == outcome.to_dict()

    def test_timings_parallel_the_window_attempts(self):
        outcome = _run(WindowSpec(length=1200, refresh=True, drift_threshold=0.3))
        assert len(outcome.timings) == len(outcome.windows)
        for stats in outcome.timings:
            assert stats["total_reports"] > 0
