"""Backend equivalence for continual runs: inline == gateway == cluster.

The per-window payloads are produced by the one shared
:class:`~repro.continual.engine.WindowController`, so any execution backend
must emit the byte-identical result sequence under one master seed — and a
gateway killed mid-window and restored from its checkpoint must leave every
window's estimates unchanged.
"""

import numpy as np
import pytest

from repro.cluster import launch_cluster, run_window_cluster_loadgen
from repro.continual import ContinualEngine
from repro.continual.windows import WindowSpec, WindowView
from repro.core.config import PrivShapeConfig
from repro.server import (
    CollectionGateway,
    GatewayClient,
    batch_id_for,
    run_window_loadgen,
    serve_in_thread,
)
from repro.service import DriftingShapeStream
from repro.service.client import ClientReporter
from repro.service.plan import CollectionPlan, RoundSpec

ALPHABET = ("a", "b", "c", "d")
TEMPLATES = (
    ("a", "b", "c", "d"),
    ("d", "c", "b", "a"),
    ("b", "c", "a", "b"),
)
WEIGHTS = (0.7, 0.2, 0.1)
SHIFTED = (0.1, 0.2, 0.7)
N_USERS = 1800
SEED = 11
WINDOWS = WindowSpec(length=600, refresh=True, drift_threshold=0.3)


def _config() -> PrivShapeConfig:
    return PrivShapeConfig(
        epsilon=6.0, top_k=2, alphabet_size=4, metric="sed",
        length_low=1, length_high=5,
    )


@pytest.fixture(scope="module")
def population():
    return DriftingShapeStream(
        n_users=N_USERS,
        alphabet=ALPHABET,
        templates=TEMPLATES,
        weights=WEIGHTS,
        seed=3,
        breakpoints=(1200,),
        mixtures=(WEIGHTS, SHIFTED),
    )


@pytest.fixture(scope="module")
def inline_outcome(population):
    return ContinualEngine(
        _config(), WINDOWS, population, batch_size=512, seed=SEED
    ).run()


def _assert_matches_inline(result_payload, inline):
    assert result_payload["windows"] == inline.windows
    assert result_payload["accounting"] == inline.accounting
    assert result_payload["base_seed"] == inline.base_seed


class TestGatewayEquivalence:
    def test_gateway_run_matches_inline(self, population, inline_outcome):
        gateway = CollectionGateway(
            _config(), rng=SEED, n_shards=2,
            windows=WINDOWS, n_users=population.n_users,
        )
        with serve_in_thread(gateway) as handle:
            stats = run_window_loadgen(
                handle.host, handle.port, population, batch_size=257
            )
        _assert_matches_inline(stats.result, inline_outcome)
        # One closed-window record per window attempt (drift re-run included).
        assert len(stats.windows) == len(inline_outcome.windows)

    def test_kill_and_recover_mid_window_leaves_estimates_unchanged(
        self, population, inline_outcome, tmp_path
    ):
        """The acceptance criterion: crash the gateway mid-window-1, restore
        from the checkpoint, finish the run — every window byte-identical."""
        checkpoint_dir = str(tmp_path / "ckpt")
        gateway = CollectionGateway(
            _config(), rng=SEED, checkpoint_dir=checkpoint_dir,
            windows=WINDOWS, n_users=population.n_users,
        )
        handle = serve_in_thread(gateway)
        client = GatewayClient(handle.host, handle.port)
        reporter = ClientReporter()
        # Drive window 0 to completion and open window 1, then stop partway
        # through window 1's current round.
        while True:
            current = client.round()
            assert not current["done"]
            ticket = current["window"]
            if ticket["index"] == 1:
                break
            if current.get("window_done"):
                client.request({"op": "window"})
                continue
            _stream_round(client, reporter, population, current)
            client.close_round(current["round"]["index"])
        batches = _round_batches(reporter, population, current)
        half = len(batches) // 2
        assert half >= 1
        for batch, batch_id in batches[:half]:
            client.report(batch, batch_id)
        client.checkpoint()
        client.close()
        handle.stop()  # crash: everything since the checkpoint is gone

        recovered = CollectionGateway.from_checkpoint(checkpoint_dir)
        with serve_in_thread(recovered) as handle:
            with handle.client() as client:
                current = client.round()
                assert current["window"]["index"] == 1
                duplicates = 0
                # Replay the interrupted round with the same batch boundaries:
                # the checkpointed half is rejected as duplicates, the rest
                # lands, and no user is ever counted twice.
                for batch, batch_id in batches:
                    if not client.report(batch, batch_id)["accepted"]:
                        duplicates += 1
                assert duplicates == half
                client.close_round(current["round"]["index"])
            # Finish the remaining rounds and windows via the loadgen.
            stats = run_window_loadgen(
                handle.host, handle.port, population, batch_size=257
            )
        _assert_matches_inline(stats.result, inline_outcome)

    def test_windowless_gateway_rejects_window_loadgen(self, population):
        gateway = CollectionGateway(_config(), rng=SEED)
        from repro.exceptions import ConfigurationError

        with serve_in_thread(gateway) as handle:
            with pytest.raises(ConfigurationError, match="continual"):
                run_window_loadgen(handle.host, handle.port, population)


class TestClusterEquivalence:
    def test_cluster_run_matches_inline(self, population, inline_outcome):
        with launch_cluster(
            _config(),
            n_users=population.n_users,
            n_workers=2,
            rng=SEED,
            windows=WINDOWS,
        ) as cluster:
            stats = run_window_cluster_loadgen(
                cluster.host, cluster.port, population, batch_size=193
            )
            restarts = list(cluster.supervisor.restarts)
        _assert_matches_inline(stats.result, inline_outcome)
        assert restarts == [0, 0]
        assert len(stats.windows) == len(inline_outcome.windows)


def _round_batches(reporter, population, current):
    """All (batch, batch_id) pairs one round needs, over the window's view."""
    ticket = current["window"]
    view = WindowView(population, ticket["start"], ticket["stop"])
    plan = CollectionPlan.from_dict(current["plan"])
    spec = RoundSpec.from_dict(current["round"])
    batches = []
    for user_ids, batch_population in view.iter_range(0, view.n_users, 200):
        mask = plan.participant_mask(spec, user_ids)
        if not mask.any():
            continue
        participants = np.flatnonzero(mask)
        batches.append(
            (
                reporter.make_reports(
                    spec, batch_population.take(participants), user_ids[participants]
                ),
                batch_id_for(spec.index, user_ids[0], user_ids[-1] + 1),
            )
        )
    return batches


def _stream_round(client, reporter, population, current):
    for batch, batch_id in _round_batches(reporter, population, current):
        client.report(batch, batch_id)
