"""Collection plan semantics and protocol-engine state discipline."""

import numpy as np
import pytest

from repro.core.config import PrivShapeConfig
from repro.exceptions import ProtocolStateError
from repro.service.plan import CollectionPlan, RoundSpec
from repro.service.protocol import PrivShapeEngine
from repro.service.rounds import accumulate, encode_reports, new_accumulator
from repro.service.population import EncodedPopulation


def _config(**overrides) -> PrivShapeConfig:
    defaults = dict(
        epsilon=6.0, top_k=2, alphabet_size=4, metric="sed", length_low=1, length_high=6
    )
    defaults.update(overrides)
    return PrivShapeConfig(**defaults)


class TestCollectionPlan:
    def test_groups_partition_every_user(self):
        plan = CollectionPlan.freeze(_config(), split_key=42)
        groups = plan.group_of(np.arange(100000))
        assert groups.min() >= 0 and groups.max() <= 3
        # Group sizes concentrate around the configured fractions.
        sizes = np.bincount(groups, minlength=4) / 100000
        assert np.allclose(sizes, (0.02, 0.08, 0.7, 0.2), atol=0.01)

    def test_membership_is_pure_function_of_user_id(self):
        plan = CollectionPlan.freeze(_config(), split_key=7)
        ids = np.arange(10000)
        whole = plan.group_of(ids)
        pieces = np.concatenate([plan.group_of(ids[:123]), plan.group_of(ids[123:])])
        assert np.array_equal(whole, pieces)

    def test_expand_levels_cover_all_levels(self):
        plan = CollectionPlan.freeze(_config(), split_key=1)
        levels = plan.expand_level_of(np.arange(50000), n_levels=5)
        assert set(np.unique(levels)) == {0, 1, 2, 3, 4}

    def test_participant_masks_are_disjoint_across_rounds(self):
        """Each user reports in exactly one round (parallel composition)."""
        config = _config()
        engine = PrivShapeEngine(config, rng=0)
        population = EncodedPopulation.from_sequences(
            [tuple("abcd")] * 1500 + [tuple("dcba")] * 1500, config.alphabet
        )
        user_ids = np.arange(len(population))
        reported = np.zeros(len(population), dtype=int)
        while (spec := engine.open_round()) is not None:
            mask = engine.plan.participant_mask(spec, user_ids)
            reported += mask.astype(int)
            aggregate = new_accumulator(spec)
            if mask.any():
                rows = np.flatnonzero(mask)
                accumulate(
                    spec,
                    aggregate,
                    encode_reports(spec, population.take(rows), user_ids[rows]),
                )
            engine.close_round(spec, aggregate)
        assert reported.max() <= 1

    def test_describe_covers_all_phases(self):
        plan = CollectionPlan.freeze(_config(), split_key=0)
        phases = plan.describe()
        assert [p["group"] for p in phases] == ["Pa", "Pb", "Pc", "Pd"]


class TestRoundSpecSerialization:
    def test_round_trip(self):
        spec = RoundSpec(
            index=3,
            kind="expand",
            key=123456789,
            epsilon=4.0,
            group=2,
            metric="dtw",
            alphabet=("a", "b", "c"),
            level=1,
            est_length=4,
            candidates=(("a", "b"), ("b", "c")),
        )
        assert RoundSpec.from_dict(spec.to_dict()) == spec

    def test_dict_form_is_plain_data(self):
        import json

        spec = RoundSpec(
            index=0, kind="length", key=1, epsilon=2.0, group=0,
            metric="sed", alphabet=("a", "b"), length_low=1, length_high=4,
        )
        json.dumps(spec.to_dict())  # must not raise


class TestEngineStateDiscipline:
    def test_open_twice_rejected(self):
        engine = PrivShapeEngine(_config(), rng=0)
        engine.open_round()
        with pytest.raises(ProtocolStateError):
            engine.open_round()

    def test_close_wrong_round_rejected(self):
        engine = PrivShapeEngine(_config(), rng=0)
        spec = engine.open_round()
        stale = RoundSpec(
            index=spec.index + 5, kind=spec.kind, key=spec.key, epsilon=spec.epsilon,
            group=spec.group, metric=spec.metric, alphabet=spec.alphabet,
            length_low=spec.length_low, length_high=spec.length_high,
        )
        with pytest.raises(ProtocolStateError):
            engine.close_round(stale, new_accumulator(stale))

    def test_finalize_before_done_rejected(self):
        engine = PrivShapeEngine(_config(), rng=0)
        with pytest.raises(ProtocolStateError):
            engine.finalize()

    def test_labeled_engine_requires_n_classes(self):
        with pytest.raises(ValueError):
            PrivShapeEngine(_config(), rng=0, labeled=True)

    def test_round_indices_are_sequential(self):
        config = _config()
        engine = PrivShapeEngine(config, rng=1)
        population = EncodedPopulation.from_sequences(
            [tuple("abc")] * 1200, config.alphabet
        )
        user_ids = np.arange(len(population))
        indices = []
        while (spec := engine.open_round()) is not None:
            indices.append(spec.index)
            aggregate = new_accumulator(spec)
            mask = engine.plan.participant_mask(spec, user_ids)
            if mask.any():
                rows = np.flatnonzero(mask)
                accumulate(
                    spec,
                    aggregate,
                    encode_reports(spec, population.take(rows), user_ids[rows]),
                )
            engine.close_round(spec, aggregate)
        assert indices == list(range(len(indices)))


class TestClosestCandidateTieBreak:
    def test_distance_ties_prefer_longest_shared_prefix(self):
        """Users shorter than the trie height stay on their own branch.

        A 'dcba' user is at the same edit distance from 'abcdcba' (prepend
        'abc') as from 'dcbacba' (append 'cba'); first-index tie-breaking
        would merge her with the other class's users in one refinement cell.
        """
        from repro.service.rounds import _closest_per_user

        spec = RoundSpec(
            index=0, kind="refine", key=1, epsilon=4.0, group=3,
            metric="sed", alphabet=("a", "b", "c", "d"),
            candidates=(tuple("abcdcba"), tuple("dcbacba")),
        )
        population = EncodedPopulation.from_sequences(
            [tuple("dcba"), tuple("abcdcba")], ("a", "b", "c", "d")
        )
        closest = _closest_per_user(spec, population)
        assert list(closest) == [1, 0]

    def test_unique_minimum_still_wins(self):
        from repro.service.rounds import _closest_per_user

        spec = RoundSpec(
            index=0, kind="refine", key=1, epsilon=4.0, group=3,
            metric="sed", alphabet=("a", "b", "c", "d"),
            candidates=(tuple("abcd"), tuple("dcba")),
        )
        population = EncodedPopulation.from_sequences(
            [tuple("abcd"), tuple("dcb")], ("a", "b", "c", "d")
        )
        closest = _closest_per_user(spec, population)
        assert list(closest) == [0, 1]
