"""Serialization round-trips for the collection-service wire format."""

import numpy as np
import pytest

from repro.service.reports import ReportBatch


def _roundtrip(batch: ReportBatch) -> ReportBatch:
    return ReportBatch.from_bytes(batch.to_bytes())


class TestRoundTrips:
    def test_length_payload(self):
        batch = ReportBatch(
            round_index=0,
            kind="length",
            user_ids=np.arange(100, dtype=np.int64),
            payload=np.arange(100, dtype=np.int32) % 7,
        )
        restored = _roundtrip(batch)
        assert restored.round_index == 0
        assert restored.kind == "length"
        assert np.array_equal(restored.user_ids, batch.user_ids)
        assert np.array_equal(restored.payload, batch.payload)

    def test_subshape_two_column_payload(self):
        payload = np.stack(
            [np.arange(50) % 4 + 1, np.arange(50) % 12], axis=1
        ).astype(np.int32)
        batch = ReportBatch(
            round_index=1, kind="subshape", user_ids=np.arange(50), payload=payload
        )
        restored = _roundtrip(batch)
        assert restored.payload.shape == (50, 2)
        assert np.array_equal(restored.payload, payload)

    def test_refine_bits_are_packed_and_restored(self):
        rng = np.random.default_rng(0)
        bits = (rng.random((64, 13)) < 0.3).astype(np.uint8)
        batch = ReportBatch(
            round_index=7, kind="refine", user_ids=np.arange(64), payload=bits
        )
        wire = batch.to_bytes()
        restored = ReportBatch.from_bytes(wire)
        assert np.array_equal(restored.payload, bits)
        # Packed on the wire: 13 cells fit in 2 bytes per user, not 13.
        assert len(wire) < 64 * 13 + 64 * 8

    def test_labeled_refine_bits(self):
        bits = np.eye(8, 21, dtype=np.uint8)
        batch = ReportBatch(
            round_index=3, kind="refine_labeled", user_ids=np.arange(8), payload=bits
        )
        assert np.array_equal(_roundtrip(batch).payload, bits)

    def test_empty_batch(self):
        batch = ReportBatch(
            round_index=2,
            kind="expand",
            user_ids=np.empty(0, dtype=np.int64),
            payload=np.empty(0, dtype=np.int32),
        )
        restored = _roundtrip(batch)
        assert len(restored) == 0
        assert restored.kind == "expand"


class TestValidation:
    def test_mismatched_rows_rejected(self):
        with pytest.raises(ValueError):
            ReportBatch(
                round_index=0,
                kind="length",
                user_ids=np.arange(5),
                payload=np.arange(4, dtype=np.int32),
            )

    def test_take_subsets_rows(self):
        batch = ReportBatch(
            round_index=0,
            kind="expand",
            user_ids=np.arange(10),
            payload=np.arange(10, dtype=np.int32),
        )
        subset = batch.take(np.array([1, 3, 5]))
        assert np.array_equal(subset.user_ids, [1, 3, 5])
        assert np.array_equal(subset.payload, [1, 3, 5])
