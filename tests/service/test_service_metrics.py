"""Tests for the service metrics helpers."""

from repro.service.metrics import ThroughputMeter, cpu_count, peak_rss_bytes


class TestThroughputMeter:
    def test_counts_reports_across_scopes(self):
        meter = ThroughputMeter()
        meter.add(100)
        meter.add(250)
        assert meter.reports == 350

    def test_rate_uses_accumulated_elapsed_time(self):
        meter = ThroughputMeter(reports=500, elapsed_seconds=2.0)
        assert meter.reports_per_second == 250.0

    def test_zero_elapsed_reports_zero_rate(self):
        meter = ThroughputMeter(reports=1000)
        assert meter.elapsed_seconds == 0.0
        assert meter.reports_per_second == 0.0

    def test_near_zero_elapsed_reports_zero_rate(self):
        # A stop() right after start() can leave elapsed at the clock's
        # resolution floor; the rate must clamp to 0 instead of exploding.
        meter = ThroughputMeter(reports=1000, elapsed_seconds=1e-7)
        assert meter.reports_per_second == 0.0

    def test_just_above_guard_divides_normally(self):
        meter = ThroughputMeter(reports=10, elapsed_seconds=1e-3)
        assert meter.reports_per_second == 10 / 1e-3

    def test_stop_without_start_is_a_no_op(self):
        meter = ThroughputMeter()
        meter.stop()
        assert meter.elapsed_seconds == 0.0

    def test_start_stop_accumulates(self):
        meter = ThroughputMeter()
        meter.start()
        meter.stop()
        first = meter.elapsed_seconds
        meter.start()
        meter.stop()
        assert meter.elapsed_seconds >= first >= 0.0


def test_cpu_count_is_at_least_one():
    assert cpu_count() >= 1


def test_peak_rss_is_nonnegative():
    assert peak_rss_bytes() >= 0
