"""Tests for the service metrics helpers."""

import time

from repro.service.metrics import (
    ThroughputMeter,
    _ru_maxrss_to_bytes,
    cpu_count,
    peak_rss_bytes,
)


class TestThroughputMeter:
    def test_counts_reports_across_scopes(self):
        meter = ThroughputMeter()
        meter.add(100)
        meter.add(250)
        assert meter.reports == 350

    def test_rate_uses_accumulated_elapsed_time(self):
        meter = ThroughputMeter(reports=500, elapsed_seconds=2.0)
        assert meter.reports_per_second == 250.0

    def test_zero_elapsed_reports_zero_rate(self):
        meter = ThroughputMeter(reports=1000)
        assert meter.elapsed_seconds == 0.0
        assert meter.reports_per_second == 0.0

    def test_near_zero_elapsed_reports_zero_rate(self):
        # A stop() right after start() can leave elapsed at the clock's
        # resolution floor; the rate must clamp to 0 instead of exploding.
        meter = ThroughputMeter(reports=1000, elapsed_seconds=1e-7)
        assert meter.reports_per_second == 0.0

    def test_just_above_guard_divides_normally(self):
        meter = ThroughputMeter(reports=10, elapsed_seconds=1e-3)
        assert meter.reports_per_second == 10 / 1e-3

    def test_stop_without_start_is_a_no_op(self):
        meter = ThroughputMeter()
        meter.stop()
        assert meter.elapsed_seconds == 0.0

    def test_start_stop_accumulates(self):
        meter = ThroughputMeter()
        meter.start()
        meter.stop()
        first = meter.elapsed_seconds
        meter.start()
        meter.stop()
        assert meter.elapsed_seconds >= first >= 0.0

    def test_double_start_keeps_the_in_progress_interval(self):
        # A second start() must not discard the running interval: the
        # elapsed time must cover the full span since the FIRST start.
        meter = ThroughputMeter()
        meter.start()
        time.sleep(0.02)
        meter.start()  # no-op; the 20ms already accrued stays measured
        meter.stop()
        assert meter.elapsed_seconds >= 0.02

    def test_double_stop_is_idempotent(self):
        meter = ThroughputMeter()
        meter.start()
        meter.stop()
        elapsed = meter.elapsed_seconds
        meter.stop()
        assert meter.elapsed_seconds == elapsed

    def test_running_property_tracks_interval_state(self):
        meter = ThroughputMeter()
        assert not meter.running
        meter.start()
        assert meter.running
        meter.start()
        assert meter.running
        meter.stop()
        assert not meter.running


class TestRuMaxrssToBytes:
    def test_darwin_reports_bytes(self):
        assert _ru_maxrss_to_bytes(1_048_576, "darwin") == 1_048_576

    def test_linux_reports_kibibytes(self):
        assert _ru_maxrss_to_bytes(1024, "linux") == 1024 * 1024

    def test_bsd_family_reports_kibibytes(self):
        for platform in ("freebsd13", "openbsd7", "netbsd9"):
            assert _ru_maxrss_to_bytes(8, platform) == 8 * 1024

    def test_unknown_platform_reports_zero(self):
        # The ru_maxrss unit is undefined there; 0 ("unavailable") beats a
        # number that may be off by three orders of magnitude.
        assert _ru_maxrss_to_bytes(12345, "sunos5") == 0
        assert _ru_maxrss_to_bytes(12345, "win32") == 0


def test_cpu_count_is_at_least_one():
    assert cpu_count() >= 1


def test_peak_rss_is_nonnegative():
    assert peak_rss_bytes() >= 0


def test_peak_rss_is_positive_on_this_ci_platform():
    # The suite only runs on linux/macOS, where the unit is known.
    import sys

    if sys.platform == "darwin" or sys.platform.startswith("linux"):
        assert peak_rss_bytes() > 0
