"""``iter_range`` slicing edge cases — the contract cluster routing rests on.

Every process fan-out (loadgen workers, the sharded executor, cluster shard
slices) assumes that streaming disjoint user-id ranges reproduces exactly the
rows ``iter_batches`` would emit.  These properties pin that down for both
population types, including the degenerate slices real topologies produce
(empty slices from more workers than users, stops beyond the population,
single-user slices).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import EncodedPopulation, SyntheticShapeStream, default_templates
from repro.service.population import worker_slices

ALPHABET = ("a", "b", "c", "d")


def _encoded(n_users: int) -> EncodedPopulation:
    sequences = [tuple(ALPHABET[: 2 + i % 3]) for i in range(n_users)]
    return EncodedPopulation.from_sequences(sequences, ALPHABET)


def _stream(n_users: int) -> SyntheticShapeStream:
    templates = default_templates(ALPHABET, n_templates=4, length=5, rng=0)
    return SyntheticShapeStream(
        n_users=n_users,
        alphabet=ALPHABET,
        templates=tuple(templates),
        weights=(0.4, 0.3, 0.2, 0.1),
        seed=7,
        length_jitter=0.2,
    )


def _materialize(population, start, stop, batch_size):
    """(user_ids, codes, lengths) concatenated over one iter_range stream."""
    ids, codes, lengths = [], [], []
    for user_ids, batch in population.iter_range(start, stop, batch_size):
        assert len(user_ids) == len(batch.lengths)
        ids.append(user_ids)
        codes.append(batch.codes)
        lengths.append(batch.lengths)
    if not ids:
        return np.array([], dtype=np.int64), None, None
    return np.concatenate(ids), np.vstack(codes), np.concatenate(lengths)


@pytest.fixture(scope="module", params=["encoded", "stream"])
def population(request):
    build = _encoded if request.param == "encoded" else _stream
    return build(101)


class TestDegenerateSlices:
    def test_empty_slice_yields_nothing(self, population):
        assert list(population.iter_range(40, 40, 16)) == []

    def test_inverted_slice_yields_nothing(self, population):
        assert list(population.iter_range(50, 10, 16)) == []

    def test_slice_fully_beyond_population_yields_nothing(self, population):
        assert list(population.iter_range(500, 900, 16)) == []

    def test_stop_beyond_population_clamps(self, population):
        ids, _, _ = _materialize(population, 90, 10_000, 7)
        assert ids.tolist() == list(range(90, 101))

    def test_negative_start_clamps_to_zero(self, population):
        ids, _, _ = _materialize(population, -25, 10, 16)
        assert ids.tolist() == list(range(10))

    def test_single_user_slices(self, population):
        for user_id in (0, 57, 100):
            batches = list(population.iter_range(user_id, user_id + 1, 64))
            assert len(batches) == 1
            user_ids, batch = batches[0]
            assert user_ids.tolist() == [user_id]
            assert len(batch.lengths) == 1

    def test_non_positive_batch_size_rejected(self, population):
        with pytest.raises(ValueError, match="batch_size"):
            list(population.iter_range(0, 10, 0))


class TestPartitionProperties:
    @settings(deadline=None, max_examples=25)
    @given(
        n_users=st.integers(min_value=1, max_value=300),
        workers=st.integers(min_value=1, max_value=9),
        batch_size=st.integers(min_value=1, max_value=64),
        kind=st.sampled_from(["encoded", "stream"]),
    )
    def test_worker_slices_union_equals_iter_batches(
        self, n_users, workers, batch_size, kind
    ):
        """Streaming every worker slice reproduces iter_batches exactly —
        same user ids, same codes, same lengths, no user lost or repeated.
        Holds even when workers > n_users (some slices are empty)."""
        population = (_encoded if kind == "encoded" else _stream)(n_users)
        whole_ids, whole_codes, whole_lengths = [], [], []
        for user_ids, batch in population.iter_batches(batch_size):
            whole_ids.append(user_ids)
            whole_codes.append(batch.codes)
            whole_lengths.append(batch.lengths)
        sliced_ids, sliced_codes, sliced_lengths = [], [], []
        for start, stop in worker_slices(n_users, workers):
            ids, codes, lengths = _materialize(population, start, stop, batch_size)
            if len(ids):
                sliced_ids.append(ids)
                sliced_codes.append(codes)
                sliced_lengths.append(lengths)
        assert np.concatenate(sliced_ids).tolist() == np.concatenate(
            whole_ids
        ).tolist()
        assert np.array_equal(
            np.concatenate(sliced_lengths), np.concatenate(whole_lengths)
        )
        assert np.array_equal(np.vstack(sliced_codes), np.vstack(whole_codes))

    @settings(deadline=None, max_examples=25)
    @given(
        start=st.integers(min_value=-10, max_value=120),
        stop=st.integers(min_value=-10, max_value=120),
        batch_size=st.integers(min_value=1, max_value=50),
    )
    def test_any_slice_is_a_contiguous_id_run(self, population, start, stop, batch_size):
        """iter_range(start, stop) always yields exactly the ids in
        [max(start,0), min(stop, n_users)), in order."""
        ids, _, _ = _materialize(population, start, stop, batch_size)
        expected = list(range(max(start, 0), min(max(stop, 0), 101)))
        if max(start, 0) >= min(max(stop, 0), 101):
            expected = []
        assert ids.tolist() == expected
