"""Offline/round-based equivalence: the tentpole guarantee of the service.

``ProtocolDriver`` (streaming batches, sharded aggregation, wire
serialization) must produce *byte-identical* results to the offline
``PrivShape.extract()`` path from the same master seed, because client
randomness is a pure PRF function of (round key, user id) and aggregation is
integer addition.  These tests pin that guarantee on the paper's two main
dataset configurations and across the service's degrees of freedom.
"""

import pytest

from repro.core.config import PrivShapeConfig
from repro.core.privshape import PrivShape
from repro.service import EncodedPopulation, ProtocolDriver


def _assert_identical(result_a, result_b):
    assert result_a.shapes == result_b.shapes
    assert result_a.frequencies == result_b.frequencies
    assert result_a.estimated_length == result_b.estimated_length
    assert result_a.subshape_candidates == result_b.subshape_candidates
    assert (
        result_a.accountant.per_population() == result_b.accountant.per_population()
    )


class TestOfflineDriverEquivalence:
    def test_symbols_configuration(self, symbols_sequences):
        """Paper's Symbols config (t=6): driver == offline, byte for byte."""
        config = PrivShapeConfig(
            epsilon=4.0, top_k=3, alphabet_size=6, metric="dtw", length_high=8
        )
        offline = PrivShape(config).extract(symbols_sequences, rng=2023)
        population = EncodedPopulation.from_sequences(symbols_sequences, config.alphabet)
        streamed = ProtocolDriver(
            config, population, batch_size=37, n_shards=3, serialize=True, rng=2023
        ).run()
        _assert_identical(offline, streamed)

    def test_trace_configuration(self, trace_sequences):
        """Paper's Trace config (t=4): driver == offline, byte for byte."""
        config = PrivShapeConfig(
            epsilon=4.0, top_k=4, alphabet_size=4, metric="sed", length_high=8
        )
        offline = PrivShape(config).extract(trace_sequences, rng=7)
        population = EncodedPopulation.from_sequences(trace_sequences, config.alphabet)
        streamed = ProtocolDriver(
            config, population, batch_size=64, n_shards=2, serialize=True, rng=7
        ).run()
        _assert_identical(offline, streamed)

    @pytest.mark.parametrize("batch_size", [1, 13, 500, 5000])
    def test_batch_size_invariance(self, batch_size):
        """Every batch partition of the stream yields the same extraction."""
        sequences = (
            [tuple("abcd")] * 900 + [tuple("dcba")] * 600 + [tuple("bca")] * 300
        )
        config = PrivShapeConfig(
            epsilon=6.0, top_k=2, alphabet_size=4, metric="sed", length_high=6
        )
        offline = PrivShape(config).extract(sequences, rng=5)
        population = EncodedPopulation.from_sequences(sequences, config.alphabet)
        streamed = ProtocolDriver(
            config, population, batch_size=batch_size, rng=5
        ).run()
        _assert_identical(offline, streamed)

    @pytest.mark.parametrize("n_shards", [1, 2, 7])
    def test_shard_count_invariance(self, n_shards):
        """Sharded aggregation merges to exactly the unsharded counts."""
        sequences = [tuple("abcd")] * 800 + [tuple("dcba")] * 800
        config = PrivShapeConfig(
            epsilon=6.0, top_k=2, alphabet_size=4, metric="sed", length_high=6
        )
        offline = PrivShape(config).extract(sequences, rng=9)
        population = EncodedPopulation.from_sequences(sequences, config.alphabet)
        streamed = ProtocolDriver(
            config, population, batch_size=111, n_shards=n_shards, rng=9
        ).run()
        _assert_identical(offline, streamed)

    def test_serialization_does_not_change_results(self):
        """Pushing every batch through the wire format is lossless end to end."""
        sequences = [tuple("abc")] * 700 + [tuple("cba")] * 700
        config = PrivShapeConfig(
            epsilon=5.0, top_k=2, alphabet_size=4, metric="sed", length_high=5
        )
        population = EncodedPopulation.from_sequences(sequences, config.alphabet)
        plain = ProtocolDriver(config, population, batch_size=97, rng=1).run()
        wired = ProtocolDriver(
            config, population, batch_size=97, serialize=True, rng=1
        ).run()
        _assert_identical(plain, wired)

    def test_refinement_disabled_still_equivalent(self):
        sequences = [tuple("abcd")] * 700 + [tuple("dcba")] * 500
        config = PrivShapeConfig(
            epsilon=6.0, top_k=2, alphabet_size=4, metric="sed",
            length_high=6, refinement=False,
        )
        offline = PrivShape(config).extract(sequences, rng=3)
        population = EncodedPopulation.from_sequences(sequences, config.alphabet)
        streamed = ProtocolDriver(config, population, batch_size=83, rng=3).run()
        _assert_identical(offline, streamed)
        assert "Pd" not in offline.accountant.per_population()

    def test_driver_stats_account_every_participant(self):
        sequences = [tuple("abcd")] * 1000 + [tuple("dcba")] * 1000
        config = PrivShapeConfig(
            epsilon=6.0, top_k=2, alphabet_size=4, metric="sed", length_high=6
        )
        population = EncodedPopulation.from_sequences(sequences, config.alphabet)
        driver = ProtocolDriver(config, population, batch_size=256, rng=4)
        driver.run()
        # Every user belongs to exactly one group and reports exactly once
        # (Pc users only in their assigned level's round).
        assert driver.stats.total_reports == len(sequences)
        assert driver.stats.rounds[0].kind == "length"
        assert driver.stats.rounds[-1].kind == "refine"
