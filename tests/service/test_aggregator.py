"""Sharded streaming aggregation: exactness and state discipline."""

import numpy as np
import pytest

from repro.exceptions import ProtocolStateError
from repro.service.aggregator import ShardedAggregator
from repro.service.plan import RoundSpec
from repro.service.reports import ReportBatch
from repro.service.rounds import accumulate, new_accumulator


def _expand_spec(n_candidates: int = 5) -> RoundSpec:
    candidates = tuple((chr(ord("a") + i),) for i in range(n_candidates))
    return RoundSpec(
        index=4,
        kind="expand",
        key=99,
        epsilon=2.0,
        group=2,
        metric="sed",
        alphabet=("a", "b", "c", "d", "e"),
        level=0,
        est_length=3,
        candidates=candidates,
    )


def _batch(spec, user_ids, payload):
    return ReportBatch(
        round_index=spec.index,
        kind=spec.kind,
        user_ids=np.asarray(user_ids, dtype=np.int64),
        payload=np.asarray(payload, dtype=np.int32),
    )


class TestShardedEqualsUnsharded:
    @pytest.mark.parametrize("n_shards", [2, 3, 8])
    def test_counts_merge_exactly(self, n_shards):
        spec = _expand_spec()
        rng = np.random.default_rng(0)
        user_ids = np.arange(10000)
        payload = rng.integers(0, 5, size=10000)

        unsharded = ShardedAggregator(spec, n_shards=1)
        sharded = ShardedAggregator(spec, n_shards=n_shards)
        for start in (0, 1000, 4500):  # uneven batch boundaries
            stop = start + 3300
            batch = _batch(spec, user_ids[start:stop], payload[start:stop])
            unsharded.consume(batch)
            sharded.consume(batch)
        merged_a = unsharded.finalize_round()
        merged_b = sharded.finalize_round()
        assert np.array_equal(merged_a.counts, merged_b.counts)
        assert merged_a.n_reports == merged_b.n_reports

    def test_matches_direct_accumulation(self):
        spec = _expand_spec()
        payload = np.array([0, 1, 1, 2, 4, 4, 4], dtype=np.int32)
        direct = new_accumulator(spec)
        accumulate(spec, direct, payload)

        aggregator = ShardedAggregator(spec, n_shards=4)
        aggregator.consume(_batch(spec, np.arange(7), payload))
        merged = aggregator.finalize_round()
        assert np.array_equal(merged.counts, direct.counts)
        assert merged.n_reports == 7

    def test_empty_batches_are_noops(self):
        spec = _expand_spec()
        aggregator = ShardedAggregator(spec, n_shards=2)
        aggregator.consume(_batch(spec, [], np.empty(0, dtype=np.int32)))
        merged = aggregator.finalize_round()
        assert merged.n_reports == 0
        assert merged.counts.sum() == 0


class TestStateDiscipline:
    def test_round_mismatch_rejected(self):
        spec = _expand_spec()
        aggregator = ShardedAggregator(spec, n_shards=1)
        wrong = ReportBatch(
            round_index=spec.index + 1,
            kind=spec.kind,
            user_ids=np.arange(3),
            payload=np.zeros(3, dtype=np.int32),
        )
        with pytest.raises(ProtocolStateError):
            aggregator.consume(wrong)

    def test_consume_after_finalize_rejected(self):
        spec = _expand_spec()
        aggregator = ShardedAggregator(spec, n_shards=1)
        aggregator.finalize_round()
        with pytest.raises(ProtocolStateError):
            aggregator.consume(_batch(spec, [0], [1]))

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedAggregator(_expand_spec(), n_shards=0)
