"""Population encoding and the deterministic synthetic stream."""

import numpy as np
import pytest

from repro.service.population import (
    PAD_CODE,
    DriftingShapeStream,
    EncodedPopulation,
    SyntheticShapeStream,
    default_templates,
)


class TestEncodedPopulation:
    def test_encode_decode_round_trip(self):
        sequences = [tuple("abcd"), tuple("ba"), tuple("c")]
        population = EncodedPopulation.from_sequences(sequences, "abcd")
        assert len(population) == 3
        for i, sequence in enumerate(sequences):
            assert population.decode_row(population.codes[i]) == sequence
        assert list(population.lengths) == [4, 2, 1]

    def test_padding_beyond_length(self):
        population = EncodedPopulation.from_sequences([tuple("ab")], "abcd")
        padded = population.padded_codes(5)
        assert padded.shape == (1, 5)
        assert list(padded[0]) == [0, 1, PAD_CODE, PAD_CODE, PAD_CODE]

    def test_truncation_to_width(self):
        population = EncodedPopulation.from_sequences([tuple("abcd")], "abcd")
        assert population.padded_codes(2).shape == (1, 2)

    def test_take_preserves_labels(self):
        population = EncodedPopulation.from_sequences(
            [tuple("ab"), tuple("ba"), tuple("ab")], "ab", labels=[0, 1, 0]
        )
        subset = population.take(np.array([1, 2]))
        assert list(subset.labels) == [1, 0]

    def test_iter_batches_covers_population_once(self):
        population = EncodedPopulation.from_sequences([tuple("ab")] * 10, "ab")
        seen = [ids for ids, _ in population.iter_batches(3)]
        assert np.array_equal(np.concatenate(seen), np.arange(10))


class TestDefaultTemplates:
    def test_templates_are_valid_compressed_shapes(self):
        templates = default_templates("abcd", n_templates=8, length=5, rng=0)
        assert len(templates) == 8
        assert len(set(templates)) == 8
        for template in templates:
            assert len(template) == 5
            assert all(a != b for a, b in zip(template, template[1:]))

    def test_deterministic_per_seed(self):
        assert default_templates("abcd", 4, 5, rng=1) == default_templates("abcd", 4, 5, rng=1)
        assert default_templates("abcd", 4, 5, rng=1) != default_templates("abcd", 4, 5, rng=2)


class TestSyntheticShapeStream:
    def _stream(self, n_users=5000, **overrides):
        defaults = dict(
            n_users=n_users,
            alphabet=("a", "b", "c", "d"),
            templates=(tuple("abcd"), tuple("dcba"), tuple("bcd")),
            weights=(0.6, 0.3, 0.1),
            seed=3,
            length_jitter=0.25,
        )
        defaults.update(overrides)
        return SyntheticShapeStream(**defaults)

    def test_stream_is_deterministic_and_restartable(self):
        stream = self._stream()
        first = [pop.codes.copy() for _, pop in stream.iter_batches(1024)]
        second = [pop.codes.copy() for _, pop in stream.iter_batches(1024)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_batch_size_does_not_change_users(self):
        stream = self._stream(n_users=2000)
        big = np.vstack([pop.codes for _, pop in stream.iter_batches(2000)])
        small = np.vstack([pop.codes for _, pop in stream.iter_batches(7)])
        assert np.array_equal(big, small)

    def test_template_frequencies_follow_weights(self):
        stream = self._stream(n_users=50000, length_jitter=0.0)
        counts = {}
        for _, population in stream.iter_batches(8192):
            for i in range(len(population)):
                shape = population.decode_row(population.codes[i])
                counts[shape] = counts.get(shape, 0) + 1
        assert counts[tuple("abcd")] > counts[tuple("dcba")] > counts[tuple("bcd")]

    def test_jitter_truncates_by_one_symbol(self):
        stream = self._stream(n_users=3000, length_jitter=0.5)
        lengths = np.concatenate(
            [pop.lengths for _, pop in stream.iter_batches(512)]
        )
        assert set(np.unique(lengths)) <= {2, 3, 4}
        assert (lengths == 3).sum() > 0  # some abcd/dcba users truncated

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            self._stream(n_users=0)
        with pytest.raises(ValueError):
            self._stream(weights=(1.0, -1.0, 1.0))
        with pytest.raises(ValueError):
            SyntheticShapeStream(
                n_users=10, alphabet=("a", "b"), templates=(), seed=0
            )


class TestDriftingShapeStream:
    TEMPLATES = (tuple("abcd"), tuple("dcba"), tuple("bcd"))

    def _stream(self, n_users=4000, **overrides):
        defaults = dict(
            n_users=n_users,
            alphabet=("a", "b", "c", "d"),
            templates=self.TEMPLATES,
            weights=(0.6, 0.3, 0.1),
            seed=3,
            breakpoints=(n_users // 2,),
            mixtures=((0.6, 0.3, 0.1), (0.1, 0.3, 0.6)),
        )
        defaults.update(overrides)
        return DriftingShapeStream(**defaults)

    def test_single_mixture_matches_plain_stream(self):
        """One segment with the base weights is byte-identical to
        SyntheticShapeStream: drift is a pure superset of the plain stream."""
        drifting = self._stream(breakpoints=(), mixtures=((0.6, 0.3, 0.1),))
        plain = SyntheticShapeStream(
            n_users=4000,
            alphabet=("a", "b", "c", "d"),
            templates=self.TEMPLATES,
            weights=(0.6, 0.3, 0.1),
            seed=3,
        )
        for (_, a), (_, b) in zip(
            drifting.iter_batches(777), plain.iter_batches(777)
        ):
            assert np.array_equal(a.codes, b.codes)
            assert np.array_equal(a.lengths, b.lengths)

    def test_segment_of(self):
        stream = self._stream(n_users=1000, breakpoints=(300, 600),
                              mixtures=((1.0, 1.0, 1.0),) * 3)
        assert stream.segment_of(0) == 0
        assert stream.segment_of(299) == 0
        assert stream.segment_of(300) == 1
        assert stream.segment_of(599) == 1
        assert stream.segment_of(600) == 2
        assert stream.segment_of(999) == 2

    def test_mixture_shifts_at_the_breakpoint(self):
        stream = self._stream(n_users=40000, breakpoints=(20000,))

        def dominant(start, stop):
            counts = {}
            for _, population in stream.iter_range(start, stop, 8192):
                for i in range(len(population)):
                    shape = population.decode_row(population.codes[i])
                    base = next(
                        t for t in self.TEMPLATES if shape == t or shape == t[:-1]
                    )
                    counts[base] = counts.get(base, 0) + 1
            return max(counts, key=counts.get)

        assert dominant(0, 20000) == tuple("abcd")
        assert dominant(20000, 40000) == tuple("bcd")

    def test_slices_are_reproducible(self):
        stream = self._stream()
        first = [pop.codes.copy() for _, pop in stream.iter_range(1000, 3000, 513)]
        second = [pop.codes.copy() for _, pop in stream.iter_range(1000, 3000, 513)]
        for a, b in zip(first, second):
            assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError, match="mixtures"):
            self._stream(mixtures=((0.6, 0.3, 0.1),))  # one breakpoint, one mixture
        with pytest.raises(ValueError, match="increasing"):
            self._stream(breakpoints=(600, 300),
                         mixtures=((1.0, 1.0, 1.0),) * 3)
        with pytest.raises(ValueError, match="positive weight"):
            self._stream(mixtures=((0.6, 0.3, 0.1), (0.1, 0.3)))
        with pytest.raises(ValueError, match="positive"):
            self._stream(breakpoints=(0,))
